"""Tests for the emit-style API, per-phase devices and the KM driver."""

import numpy as np
import pytest

from repro.apps.datagen import kmeans_centers, kmeans_points, wiki_text
from repro.apps.drivers import kmeans_iterate
from repro.baselines.reference import run_reference
from repro.core import JobConfig, run_glasswing
from repro.core.api import Emitter, RecordMapReduceApp
from repro.hw.presets import das4_cluster
from repro.hw.specs import DeviceKind, KiB
from repro.ocl.kernel import KernelCost
from repro.storage.records import KVSchema

from tests.conftest import assert_outputs_match


# ------------------------------------------------- emit-style kernel API
class LineLengthApp(RecordMapReduceApp):
    """Toy emit-style app: histogram of line lengths."""

    name = "linelen"
    inter_schema = KVSchema("ll", key_bytes=lambda k: 8,
                            value_bytes=lambda v: 4)
    output_schema = KVSchema("ll-out", key_bytes=lambda k: 8,
                             value_bytes=lambda v: 8)
    has_combiner = True

    def map_record(self, record, emit):
        emit(len(record), 1)

    def combine(self, key, values):
        return [sum(values)]

    def reduce(self, key, values):
        return [(key, sum(values))]

    def map_cost(self, device, n_records, in_bytes):
        return KernelCost(flops=10.0 * n_records)

    def reduce_cost(self, device, n_keys, n_values):
        return KernelCost(flops=4.0 * n_values, launches=0)


def test_emitter_collects_pairs():
    e = Emitter()
    e(b"a", 1)
    e.emit(b"b", 2)
    assert e.pairs == [(b"a", 1), (b"b", 2)]


def test_record_app_map_batch_wraps_map_record():
    app = LineLengthApp()
    assert app.map_batch([b"ab", b"xyz", b"ab"]) == [(2, 1), (3, 1), (2, 1)]


def test_record_app_runs_end_to_end():
    inputs = {"f": wiki_text(100_000, seed=201)}
    app = LineLengthApp()
    res = run_glasswing(app, inputs, das4_cluster(nodes=2),
                        JobConfig(chunk_size=16 * KiB))
    assert_outputs_match(res.output_pairs(), run_reference(app, inputs))


def test_record_app_requires_map_record():
    class Empty(RecordMapReduceApp):
        pass

    with pytest.raises(NotImplementedError):
        Empty().map_batch([b"x"])


# --------------------------------------------------- per-phase devices
def test_split_devices_map_gpu_reduce_cpu():
    pts = kmeans_points(30_000, 4, seed=202)
    from repro.apps import KMeansApp
    app = KMeansApp(kmeans_centers(64, 4, seed=203))
    cfg = JobConfig(chunk_size=64 * KiB, storage="local",
                    map_device=DeviceKind.GPU,
                    reduce_device=DeviceKind.CPU)
    res = run_glasswing(app, {"p": pts}, das4_cluster(nodes=1, gpu=True),
                        cfg)
    # Map staged to the GPU; reduce ran host-side (no transfers traced).
    assert res.metrics.stage_time("map", "stage", "node0") > 0
    assert res.metrics.stage_time("reduce", "stage", "node0") == 0.0
    ref = run_reference(app, {"p": pts})
    assert_outputs_match(res.output_pairs(), ref)


def test_effective_device_defaults():
    cfg = JobConfig()
    assert cfg.effective_map_device is DeviceKind.CPU
    assert cfg.effective_reduce_device is DeviceKind.CPU
    cfg2 = JobConfig(device=DeviceKind.GPU, reduce_device=DeviceKind.CPU)
    assert cfg2.effective_map_device is DeviceKind.GPU
    assert cfg2.effective_reduce_device is DeviceKind.CPU


# -------------------------------------------------- iterative k-means
def test_kmeans_iterate_converges():
    rng = np.random.default_rng(7)
    # Two well-separated blobs: k-means must converge quickly.
    blob_a = rng.normal(10.0, 1.0, size=(2_000, 2)).astype(np.float32)
    blob_b = rng.normal(50.0, 1.0, size=(2_000, 2)).astype(np.float32)
    points = np.vstack([blob_a, blob_b])
    rng.shuffle(points)
    initial = np.array([[0.0, 0.0], [100.0, 100.0]], dtype=np.float32)
    run = kmeans_iterate({"pts": points.tobytes()}, initial,
                         das4_cluster(nodes=2),
                         JobConfig(chunk_size=16 * KiB, storage="local"),
                         max_iterations=12, tolerance=1e-2)
    assert run.iterations < 12, "did not converge on separable blobs"
    found = sorted(run.centers.tolist())
    assert np.allclose(found[0], [10, 10], atol=1.0)
    assert np.allclose(found[1], [50, 50], atol=1.0)
    assert run.total_time > 0
    assert len(run.shifts) == run.iterations
    assert run.shifts[-1] < 1e-2


def test_kmeans_iterate_respects_budget():
    pts = kmeans_points(2_000, 4, seed=204)
    run = kmeans_iterate({"p": pts}, kmeans_centers(8, 4, seed=205),
                         das4_cluster(nodes=1),
                         JobConfig(chunk_size=16 * KiB, storage="local"),
                         max_iterations=2, tolerance=0.0)
    assert run.iterations == 2


def test_kmeans_iterate_validation():
    with pytest.raises(ValueError):
        kmeans_iterate({}, np.zeros((2, 2), dtype=np.float32),
                       das4_cluster(nodes=1), max_iterations=0)
