"""Tests for the generic 5-stage pipeline: ordering, overlap, buffering."""

import pytest

from repro.core.pipeline import Pipeline
from repro.simt import Simulator, Timeline


def build_pipeline(buffering, n_items, t_read, t_kernel, t_output,
                   t_stage=None, t_retrieve=None):
    """Pipeline whose stages are fixed-duration timeouts; returns metrics."""
    sim = Simulator()
    tl = Timeline()
    log = []

    def mk(stage, dur):
        def fn(payload):
            log.append((stage, "start", sim.now, payload))
            if dur:
                yield sim.timeout(dur)
            log.append((stage, "end", sim.now, payload))
            return payload
        return fn

    pipe = Pipeline(
        sim, tl, name="test", instance="n0", buffering=buffering,
        items=list(range(n_items)),
        read_fn=mk("read", t_read),
        kernel_fn=mk("kernel", t_kernel),
        output_fn=mk("output", t_output),
        stage_fn=mk("stage", t_stage) if t_stage is not None else None,
        retrieve_fn=mk("retrieve", t_retrieve) if t_retrieve is not None else None,
    )
    pipe.run()
    sim.run()
    return sim, tl, pipe, log


def test_all_items_flow_through():
    sim, tl, pipe, log = build_pipeline(2, 5, 1.0, 1.0, 1.0)
    assert pipe.outputs == [0, 1, 2, 3, 4]
    assert len(tl.by_category("test.input")) == 5
    assert len(tl.by_category("test.output")) == 5


def test_empty_pipeline_completes_instantly():
    sim, tl, pipe, log = build_pipeline(2, 0, 1.0, 1.0, 1.0)
    assert sim.now == 0.0
    assert pipe.outputs == []
    assert pipe.elapsed == 0.0


def test_double_buffering_overlaps_stages():
    """With B=2 the elapsed time approaches max-stage x items, not the sum."""
    sim, tl, pipe, _ = build_pipeline(2, 6, 1.0, 1.0, 1.0)
    # Perfect pipelining: fill (2) + 6 kernel slots -> ~8, far below 18.
    assert pipe.elapsed <= 9.0
    assert pipe.elapsed >= 6.0  # bounded below by the dominant stage


def test_single_buffering_serializes_input_group():
    """B=1: read(i+1) cannot start until kernel(i) released the buffer."""
    sim, tl, pipe, log = build_pipeline(1, 4, 1.0, 1.0, 0.1)
    reads = [e for e in log if e[0] == "read"]
    kernels = {e[3]: e[2] for e in log if e[0] == "kernel" and e[1] == "end"}
    for stage, kind, t, item in reads:
        if kind == "start" and item > 0:
            # read of item i starts only after kernel of item i-1 ended
            assert t >= kernels[item - 1] - 1e-9
    # Elapsed ~= sum(read) + sum(kernel) (the paper's single-buffer column).
    assert pipe.elapsed == pytest.approx(8.0, abs=0.5)


def test_single_buffer_output_still_overlaps_input_group():
    """Input group and output group share no buffers: with B=1 the output
    stage (partitioning) still overlaps reads of the next chunk."""
    sim, tl, pipe, _ = build_pipeline(1, 4, 1.0, 1.0, 0.9)
    # If output were serialized with input+kernel, elapsed would be ~11.6.
    assert pipe.elapsed < 9.6


def test_dominant_stage_governs_elapsed():
    """Elapsed ≈ dominant stage when pipelined (the paper's key claim)."""
    sim, tl, pipe, _ = build_pipeline(3, 10, 0.2, 2.0, 0.2)
    kernel_total = 10 * 2.0
    assert pipe.elapsed == pytest.approx(kernel_total, rel=0.15)


def test_stage_and_retrieve_disabled_pass_through():
    sim, tl, pipe, _ = build_pipeline(2, 3, 0.5, 0.5, 0.5)
    # Pass-throughs cost no time but still leave zero-length marker spans
    # so traces/reports always see the full five-stage shape.
    for cat in ("test.stage", "test.retrieve"):
        spans = tl.by_category(cat)
        assert len(spans) == 3
        assert all(s.duration == 0.0 for s in spans)
        assert all(s.meta.get("passthrough") for s in spans)
        assert tl.occupied_time(cat) == 0.0
    assert pipe.outputs == [0, 1, 2]


def test_five_stage_pipeline_with_transfers():
    sim, tl, pipe, _ = build_pipeline(2, 4, 0.5, 0.5, 0.5,
                                      t_stage=0.2, t_retrieve=0.2)
    assert len(tl.by_category("test.stage")) == 4
    assert len(tl.by_category("test.retrieve")) == 4


def test_items_processed_in_order():
    sim, tl, pipe, log = build_pipeline(3, 6, 0.3, 0.7, 0.2)
    kernel_starts = [e[3] for e in log if e[0] == "kernel" and e[1] == "start"]
    assert kernel_starts == sorted(kernel_starts)
    assert pipe.outputs == list(range(6))


def test_invalid_buffering_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Pipeline(sim, Timeline(), "x", "n0", 0, [], None, None, None)


def test_elapsed_recorded_in_timeline():
    sim, tl, pipe, _ = build_pipeline(2, 3, 1.0, 1.0, 1.0)
    spans = tl.by_category("test.elapsed")
    assert len(spans) == 1
    assert spans[0].duration == pipe.elapsed


def test_overlap_invariant_sum_exceeds_elapsed():
    """Pipelining means the sum of stage busy times exceeds elapsed."""
    sim, tl, pipe, _ = build_pipeline(2, 8, 1.0, 1.0, 1.0)
    total = sum(tl.occupied_time(f"test.{s}")
                for s in ("input", "kernel", "output"))
    assert total > pipe.elapsed * 1.5
