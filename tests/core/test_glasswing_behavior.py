"""Behavioural tests: the paper's §III/§IV claims hold on the real engine.

These run full Glasswing jobs and assert the *emergent* properties the
paper reports — pipeline overlap, buffering trade-offs, fine-grained
parallelism effects — not hard-coded constants.
"""

import pytest

from repro.apps import WordCountApp, KMeansApp
from repro.apps import datagen
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.hw.specs import DeviceKind, MiB
from repro.ocl.runtime import OutOfDeviceMemory

CHUNK = 262_144


@pytest.fixture(scope="module")
def wc_inputs():
    return {"wiki": datagen.wiki_text(4_000_000, seed=21)}


def run_wc(wc_inputs, **overrides):
    cfg = JobConfig(chunk_size=CHUNK, storage="local", **overrides)
    return run_glasswing(WordCountApp(), wc_inputs, das4_cluster(nodes=1),
                         cfg)


def test_pipeline_overlap_elapsed_below_stage_sum(wc_inputs):
    """§IV-B.1: 'the total elapsed time is very close to the kernel
    execution time, which is the dominant pipeline stage' — the sum of
    stage times clearly exceeds the elapsed time."""
    res = run_wc(wc_inputs)
    m = res.metrics
    stage_sum = m.stage_sum("map", node="node0")
    assert stage_sum > 1.25 * res.map_time
    dominant = max(m.breakdown("map", node="node0").values())
    assert res.map_time <= 1.35 * dominant


def test_single_buffering_serializes_input_group(wc_inputs):
    """§IV-B.1: with single buffering 'the map elapsed time equals the
    sum of the input stage and the kernel stage'."""
    res = run_wc(wc_inputs, buffering=1)
    m = res.metrics
    bd = m.breakdown("map", node="node0")
    expected = bd["input"] + bd["kernel"]
    assert res.map_time == pytest.approx(expected, rel=0.2)


def test_double_buffering_faster_than_single(wc_inputs):
    single = run_wc(wc_inputs, buffering=1)
    double = run_wc(wc_inputs, buffering=2)
    assert double.map_time < single.map_time


def test_partitioning_in_single_buffer_mode_is_faster(wc_inputs):
    """Table II right column: 'Partitioning is faster because there is
    less contention for the CPU cores.'  (Exercised with the buffer-pool
    collector, whose partitioning stage is CPU-heavy enough to collide
    with the kernel threads.)"""
    single = run_wc(wc_inputs, buffering=1, collector="buffer",
                    use_combiner=False)
    double = run_wc(wc_inputs, buffering=2, collector="buffer",
                    use_combiner=False)
    p1 = single.metrics.stage_time("map", "output", "node0")
    p2 = double.metrics.stage_time("map", "output", "node0")
    assert p1 < p2


def test_buffer_collector_makes_partitioning_dominant(wc_inputs):
    """Table II config (iii): simple output collection lowers kernel time
    but partitioning 'vastly exceeds the kernel execution and becomes the
    dominant stage of the pipeline'."""
    hashed = run_wc(wc_inputs, collector="hash", use_combiner=True,
                    partitioner_threads=1)
    buffered = run_wc(wc_inputs, collector="buffer", use_combiner=False,
                      partitioner_threads=1)
    bh = hashed.metrics.breakdown("map", "node0")
    bb = buffered.metrics.breakdown("map", "node0")
    assert bb["kernel"] < bh["kernel"]          # kernel got cheaper
    assert bb["output"] > 2 * bh["output"]      # partitioning exploded
    assert bb["output"] > bb["kernel"]          # ... and dominates
    assert buffered.job_time > hashed.job_time  # net loss (paper's verdict)


def test_combiner_reduces_intermediate_and_reduce_time(wc_inputs):
    """Table II config (ii) vs (i): no combiner -> more intermediate data,
    larger partitioning time and reduce time."""
    with_c = run_wc(wc_inputs, use_combiner=True)
    without = run_wc(wc_inputs, use_combiner=False)
    assert without.stats["pairs_emitted"] > 2 * with_c.stats["pairs_emitted"]
    assert without.metrics.stage_time("map", "output", "node0") > \
        with_c.metrics.stage_time("map", "output", "node0")
    assert without.reduce_time > with_c.reduce_time


def test_partitioner_threads_shrink_partition_stage(wc_inputs):
    """Fig 4(a): partitioning drops below the kernel stage from N=2."""
    times = {}
    for n in (1, 2, 8):
        res = run_wc(wc_inputs, partitioner_threads=n, collector="hash",
                     use_combiner=False)
        times[n] = res.metrics.stage_time("map", "output", "node0")
    assert times[2] < times[1]
    assert times[8] < times[2]


def test_more_partitions_cut_merge_delay(wc_inputs):
    """Fig 4(b): increasing P sharply decreases the merge delay."""
    delays = {}
    for P in (1, 8):
        res = run_wc(wc_inputs, partitions_per_node=P,
                     cache_threshold=20_000, use_combiner=False)
        delays[P] = res.merge_delay
    assert delays[8] < delays[1]


def test_more_partitioner_threads_grow_merge_delay(wc_inputs):
    """Fig 4(b): increasing N increases the merge delay — the partitioner
    threads starve the mergers of CPU during the map phase (paper §IV-B.1
    observes this with the CPU-heavy partitioning of config (iii))."""
    res_few = run_wc(wc_inputs, partitioner_threads=2, partitions_per_node=1,
                     cache_threshold=1_000_000, use_combiner=False,
                     collector="buffer")
    res_many = run_wc(wc_inputs, partitioner_threads=32,
                      partitions_per_node=1, cache_threshold=1_000_000,
                      use_combiner=False, collector="buffer")
    assert res_many.merge_delay > res_few.merge_delay


def test_concurrent_keys_amortize_reduce_launches(wc_inputs):
    """Fig 5: one key per launch pays massive invocation overhead;
    processing many keys concurrently amortises it."""
    slow = run_wc(wc_inputs, concurrent_keys=1, keys_per_thread=1)
    fast = run_wc(wc_inputs, concurrent_keys=2048, keys_per_thread=4)
    assert fast.reduce_time < slow.reduce_time / 3


def test_gpu_frees_host_cores_for_partitioning():
    """Table III(b): partitioning time drops when kernels run on the GPU
    'because there is no contention on CPU resources by the kernel
    threads'."""
    pts = datagen.kmeans_points(60_000, 4, seed=22)
    app = KMeansApp(datagen.kmeans_centers(512, 4, seed=23))
    cfg = JobConfig(chunk_size=128 * 1024, storage="local",
                    partitioner_threads=4, use_combiner=False)
    cpu = run_glasswing(app, {"p": pts}, das4_cluster(nodes=1, gpu=True), cfg)
    gpu = run_glasswing(app, {"p": pts}, das4_cluster(nodes=1, gpu=True),
                        cfg.with_(device=DeviceKind.GPU))
    assert gpu.metrics.stage_time("map", "kernel", "node0") < \
        cpu.metrics.stage_time("map", "kernel", "node0")
    assert gpu.metrics.stage_time("map", "output", "node0") <= \
        cpu.metrics.stage_time("map", "output", "node0")


def test_gpu_stage_and_retrieve_active_cpu_disabled():
    pts = datagen.kmeans_points(20_000, 4, seed=24)
    app = KMeansApp(datagen.kmeans_centers(64, 4, seed=25))
    cfg = JobConfig(chunk_size=64 * 1024, storage="local")
    cpu = run_glasswing(app, {"p": pts}, das4_cluster(nodes=1, gpu=True), cfg)
    gpu = run_glasswing(app, {"p": pts}, das4_cluster(nodes=1, gpu=True),
                        cfg.with_(device=DeviceKind.GPU))
    assert cpu.metrics.stage_time("map", "stage", "node0") == 0.0
    assert gpu.metrics.stage_time("map", "stage", "node0") > 0.0
    assert gpu.metrics.stage_time("map", "retrieve", "node0") > 0.0


def test_triple_buffering_can_exhaust_gpu_memory():
    """§III-D: more buffers 'may be a limited resource for GPUs'."""
    pts = datagen.kmeans_points(1000, 4, seed=26)
    app = KMeansApp(datagen.kmeans_centers(16, 4, seed=27))
    cfg = JobConfig(chunk_size=300 * MiB, buffering=3,
                    device=DeviceKind.GPU, storage="local")
    with pytest.raises(OutOfDeviceMemory):
        run_glasswing(app, {"p": pts}, das4_cluster(nodes=1, gpu=True), cfg)


def test_local_storage_faster_than_hdfs(wc_inputs):
    """Fig 3(d) narrative: HDFS (JNI) costs real time vs the local FS."""
    local = run_wc(wc_inputs)
    dfs = run_glasswing(WordCountApp(), wc_inputs, das4_cluster(nodes=1),
                        JobConfig(chunk_size=CHUNK, storage="dfs"))
    assert local.job_time < dfs.job_time


def test_scaling_out_reduces_job_time(wc_inputs):
    one = run_glasswing(WordCountApp(), wc_inputs, das4_cluster(nodes=1),
                        JobConfig(chunk_size=CHUNK))
    four = run_glasswing(WordCountApp(), wc_inputs, das4_cluster(nodes=4),
                         JobConfig(chunk_size=CHUNK))
    assert four.job_time < one.job_time
    speedup = one.job_time / four.job_time
    assert 1.5 < speedup <= 4.5
