"""The chaos matrix: {wordcount, terasort, kmeans} × {double the
cluster, halve it, coordinator crash mid-map, mid-reduce} × all three
scheduling policies.

Every cell asserts the headline elasticity guarantee — the output under
membership churn is identical to the *static* run with the same initial
active set — plus the bookkeeping the transition implies (who joined or
drained, re-push vs re-execution, exactly one election delay per
failover).  Unlike tests/core/test_fault_matrix.py this matrix spans
all schedulers: membership transitions go through the scheduler seam
(``node_joined``/``node_left``), so every policy must honor them.
"""

import functools

import pytest

from repro.apps import KMeansApp, TeraSortApp, WordCountApp
from repro.apps.datagen import (kmeans_centers, kmeans_points, teragen,
                                wiki_text)
from repro.core import JobConfig, run_glasswing
from repro.core.faults import (CoordinatorCrash, FaultPlan, NodeJoin,
                               NodeLeave)
from repro.hw.presets import das4_cluster
from repro.storage.records import NO_COMPRESSION

from tests.conftest import assert_outputs_match

NODES = 4
HALF = NODES // 2
SCHEDULERS = ("static-affinity", "dynamic-locality", "oplevel")
REPLICAS = 3
#: Election delay, well under these small jobs' map extent — a delay
#: comparable to the map phase would (correctly) turn transitions queued
#: behind a failover into after-shuffle no-ops.
FAILOVER = 2e-4


def canonical(result):
    return sorted(result.output_pairs(), key=repr)


class AppCase:
    """One application column; chaos cells run on the DFS backend so
    joins/leaves interact with replicated input placement."""

    exact = True

    def config(self, scheduler, **overrides):
        return JobConfig(storage="dfs", input_replication=3,
                         scheduler=scheduler, **self.tuning(), **overrides)

    def run(self, scheduler, faults=None, **overrides):
        return run_glasswing(self.app(), self.inputs(),
                             das4_cluster(nodes=NODES),
                             self.config(scheduler, **overrides),
                             faults=faults)

    def assert_same_output(self, res, golden):
        if self.exact:
            assert canonical(res) == canonical(golden)
        else:
            assert_outputs_match(res.output_pairs(), golden.output_pairs())


class WordCount(AppCase):
    def app(self):
        return WordCountApp()

    def inputs(self):
        return {"wiki": wiki_text(150_000, seed=81)}

    def tuning(self):
        return dict(chunk_size=16_384)


class TeraSort(AppCase):
    DATA = teragen(1_500, seed=82)

    def app(self):
        return TeraSortApp.from_input(self.DATA)

    def inputs(self):
        return {"tera": self.DATA}

    def tuning(self):
        return dict(chunk_size=15_000, output_replication=1,
                    compression=NO_COMPRESSION)


class KMeans(AppCase):
    exact = False    # float-sum reduction may reassociate

    def app(self):
        return KMeansApp(kmeans_centers(8, 4, seed=84))

    def inputs(self):
        return {"points": kmeans_points(8_000, 4, seed=83)}

    def tuning(self):
        return dict(chunk_size=16_384)


CASES = {"wordcount": WordCount(), "terasort": TeraSort(), "kmeans": KMeans()}


@functools.lru_cache(maxsize=None)
def golden(app, scheduler, active_nodes=None, replicas=1):
    """Static (chaos-free) reference run for one cell shape."""
    overrides = {}
    if active_nodes is not None:
        overrides["active_nodes"] = active_nodes
    if replicas != 1:
        overrides.update(coordinator_replicas=replicas,
                         failover_timeout=FAILOVER)
    return CASES[app].run(scheduler, **overrides)


@pytest.fixture(params=sorted(CASES))
def app(request):
    return request.param


@pytest.fixture(params=SCHEDULERS)
def scheduler(request):
    return request.param


def test_double_the_cluster(app, scheduler):
    """Start on half the nodes; the other half joins mid-map.  Output
    must match the static half-cluster run (the partition space is
    pinned to the initial actives) and growth must never slow the job."""
    case = CASES[app]
    base = golden(app, scheduler, active_nodes=HALF)
    joins = tuple(NodeJoin(None, (0.25 + 0.2 * i) * base.map_time)
                  for i in range(NODES - HALF))
    res = case.run(scheduler, faults=FaultPlan(node_joins=joins),
                   active_nodes=HALF)
    case.assert_same_output(res, base)
    assert res.stats["leaked_buffer_slots"] == 0
    # Auto-joins resolve to the lowest standby first.
    assert res.stats["joined_nodes"] == list(range(HALF, NODES))
    assert res.stats["final_active_nodes"] == NODES
    # Timing is policy-dependent at this tiny scale: under
    # static-affinity growth stays within noise of the static run (the
    # strict never-slower claim is asserted at bench scale by
    # repro.bench.elastic), while the pull-based policies may hand a
    # joiner a remote-input split whose fetch stretches the tail — the
    # cost must stay bounded, not zero.
    bound = 1.1 if scheduler == "static-affinity" else 2.0
    assert res.job_time <= base.job_time * bound


def test_halve_the_cluster(app, scheduler):
    """Start on all nodes; half drain mid-map through the recovery
    path.  Output must match the static full-cluster run, and because
    drained spill stays readable the lost work re-homes at least partly
    by re-push rather than only re-execution."""
    case = CASES[app]
    base = golden(app, scheduler)
    leaves = tuple(NodeLeave(None, (0.25 + 0.2 * i) * base.map_time)
                   for i in range(NODES - HALF))
    res = case.run(scheduler, faults=FaultPlan(node_leaves=leaves))
    case.assert_same_output(res, base)
    assert res.stats["leaked_buffer_slots"] == 0
    # Auto-leaves drain the highest live node first.
    assert res.stats["departed_nodes"] == list(range(HALF, NODES))
    assert res.stats["dead_nodes"] == []
    assert res.stats["final_active_nodes"] == HALF
    assert res.stats["repushed_runs"] > 0
    assert res.job_time >= base.job_time


@pytest.mark.parametrize("phase", ["map", "reduce"])
def test_coordinator_failover(app, scheduler, phase):
    """Kill the control-plane leader mid-map or mid-reduce.  The
    standby takes over at byte-identical output, and each failover
    costs exactly one election delay."""
    case = CASES[app]
    base = golden(app, scheduler, replicas=REPLICAS)
    if phase == "map":
        at = 0.4 * base.map_time
    else:
        at = (base.job_time - base.reduce_time) + 0.5 * base.reduce_time
    res = case.run(scheduler,
                   faults=FaultPlan(coordinator_crashes=(CoordinatorCrash(at),)),
                   coordinator_replicas=REPLICAS, failover_timeout=FAILOVER)
    case.assert_same_output(res, base)
    assert res.stats["leaked_buffer_slots"] == 0
    assert res.stats["coordinator_failovers"] == 1
    assert res.stats["coordinator_epoch"] == 1
    assert res.job_time == pytest.approx(base.job_time + FAILOVER)


def test_double_and_failover_compose(app):
    """Scale-out queued behind a failover: both joins must still land
    (on distinct standbys) once the new leader is elected."""
    case = CASES[app]
    scheduler = "static-affinity"
    base = golden(app, scheduler, active_nodes=HALF, replicas=REPLICAS)
    crash_at = 0.3 * base.map_time
    plan = FaultPlan(
        coordinator_crashes=(CoordinatorCrash(crash_at),),
        node_joins=tuple(NodeJoin(None, crash_at + i * FAILOVER / 10)
                         for i in range(NODES - HALF)))
    res = case.run(scheduler, faults=plan, active_nodes=HALF,
                   coordinator_replicas=REPLICAS, failover_timeout=FAILOVER)
    case.assert_same_output(res, base)
    assert res.stats["joined_nodes"] == list(range(HALF, NODES))
    assert res.stats["coordinator_failovers"] == 1
    assert res.stats["leaked_buffer_slots"] == 0


def test_single_replica_crash_is_fatal(app):
    """Without HA replicas the pre-elastic behavior is preserved: a
    coordinator crash kills the job."""
    case = CASES[app]
    base = golden(app, "static-affinity")
    plan = FaultPlan(coordinator_crashes=(CoordinatorCrash(0.5 * base.map_time),))
    with pytest.raises(RuntimeError, match="every coordinator replica"):
        case.run("static-affinity", faults=plan)


def test_membership_after_shuffle_is_ignored(app):
    """Joins and leaves landing after the shuffle window are recorded
    no-ops: there is no map work to steal and nothing volatile to
    drain."""
    case = CASES[app]
    base = golden(app, "static-affinity")
    plan = FaultPlan(node_joins=(NodeJoin(None, base.job_time * 10),),
                     node_leaves=(NodeLeave(None, base.job_time * 20),))
    res = case.run("static-affinity", faults=plan)
    case.assert_same_output(res, base)
    assert res.stats["joined_nodes"] == []
    assert res.stats["departed_nodes"] == []
    assert res.job_time == pytest.approx(base.job_time)
