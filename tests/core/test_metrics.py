"""Tests for the JobMetrics view over timelines."""

import pytest

from repro.core.metrics import JobMetrics
from repro.simt import Timeline


def make_metrics():
    tl = Timeline()
    # node0 map: input [0,2], kernel [1,4], output [3,5]
    tl.record("map.input", "node0", 0.0, 2.0)
    tl.record("map.kernel", "node0", 1.0, 4.0)
    tl.record("map.output", "node0", 3.0, 5.0)
    tl.record("map.elapsed", "node0", 0.0, 5.0)
    # node1 is slower on the kernel
    tl.record("map.kernel", "node1", 0.0, 6.0)
    tl.record("map.elapsed", "node1", 0.0, 6.5)
    tl.record("merge.delay", "node0", 5.0, 5.5)
    tl.record("merge.delay", "node1", 6.5, 7.5)
    tl.record("reduce.kernel", "node0", 8.0, 9.0)
    tl.record("reduce.elapsed", "node0", 8.0, 9.5)
    return JobMetrics(tl, n_nodes=2)


def test_stage_time_for_node():
    m = make_metrics()
    assert m.stage_time("map", "kernel", "node0") == 3.0
    assert m.stage_time("map", "kernel", "node1") == 6.0


def test_stage_time_defaults_to_max_across_nodes():
    m = make_metrics()
    assert m.stage_time("map", "kernel") == 6.0


def test_missing_stage_is_zero():
    m = make_metrics()
    assert m.stage_time("map", "retrieve") == 0.0
    assert m.stage_time("reduce", "input") == 0.0


def test_breakdown_has_all_stages():
    m = make_metrics()
    bd = m.breakdown("map", "node0")
    assert set(bd) == {"input", "stage", "kernel", "retrieve", "output"}
    assert bd["input"] == 2.0


def test_phase_elapsed_spans_all_nodes():
    m = make_metrics()
    assert m.map_elapsed == 6.5
    assert m.reduce_elapsed == 1.5


def test_merge_delay_is_max():
    m = make_metrics()
    assert m.merge_delay == 1.0


def test_stage_sum():
    m = make_metrics()
    assert m.stage_sum("map", "node0") == pytest.approx(2.0 + 3.0 + 2.0)


def test_empty_timeline():
    m = JobMetrics(Timeline(), n_nodes=1)
    assert m.map_elapsed == 0.0
    assert m.merge_delay == 0.0
    assert m.stage_time("map", "kernel") == 0.0


def test_breakdown_reads_the_requested_phase():
    """Regression: breakdown("reduce") must report reduce spans, not map.

    The bug iterated MAP_STAGES categories regardless of ``phase``; with
    identical stage names the symptom was map numbers leaking into reduce
    rows whenever the two differed.
    """
    m = make_metrics()
    bd = m.breakdown("reduce", "node0")
    assert set(bd) == {"input", "stage", "kernel", "retrieve", "output"}
    assert bd["kernel"] == 1.0          # reduce.kernel [8,9], not map's 3.0
    assert bd["input"] == 0.0           # no reduce.input recorded
    assert m.stage_sum("reduce", "node0") == 1.0


def test_stages_for_recognises_phase_families():
    from repro.core.metrics import MAP_STAGES, REDUCE_STAGES, stages_for
    assert stages_for("map") is MAP_STAGES
    assert stages_for("map.recovery") is MAP_STAGES
    assert stages_for("reduce") is REDUCE_STAGES
