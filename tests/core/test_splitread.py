"""Tests for record-aligned split reading (the Hadoop line protocol)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.splitread import split_text_lines


def lines_via_splits(data: bytes, split_size: int, lookahead: int = 1 << 16):
    """Read ``data`` as consecutive splits; concatenate their records."""
    records = []
    offset = 0
    while offset < len(data):
        end = min(offset + split_size, len(data))
        first = offset == 0
        base = offset - 1 if not first else 0
        raw = data[base:end + lookahead]
        records.extend(split_text_lines(raw, base, end, first=first))
        offset = end
    return records


def test_single_split_gets_all_lines():
    data = b"alpha\nbeta\ngamma\n"
    assert lines_via_splits(data, 1000) == [b"alpha", b"beta", b"gamma"]


def test_missing_trailing_newline_keeps_last_line():
    data = b"alpha\nbeta"
    assert lines_via_splits(data, 1000) == [b"alpha", b"beta"]


def test_split_boundary_inside_record():
    data = b"aaaa\nbbbb\ncccc\n"
    # Splits of 7 bytes cut inside "bbbb": it must appear exactly once.
    assert lines_via_splits(data, 7) == [b"aaaa", b"bbbb", b"cccc"]


def test_split_boundary_exactly_after_newline():
    data = b"aaaa\nbbbb\n"
    # Split boundary at offset 5 = start of "bbbb".
    assert lines_via_splits(data, 5) == [b"aaaa", b"bbbb"]


def test_empty_lines_preserved():
    data = b"a\n\nb\n"
    assert lines_via_splits(data, 3) == [b"a", b"", b"b"]


def test_tiny_splits():
    data = b"one\ntwo\nthree\nfour\n"
    for size in range(1, len(data) + 1):
        assert lines_via_splits(data, size) == [b"one", b"two", b"three",
                                                b"four"], size


@settings(max_examples=200, deadline=None)
@given(
    lines=st.lists(st.binary(max_size=30).filter(lambda b: b"\n" not in b),
                   min_size=0, max_size=40),
    split_size=st.integers(min_value=1, max_value=200),
    trailing=st.booleans(),
)
def test_every_record_in_exactly_one_split(lines, split_size, trailing):
    """Property: concatenating all splits' records == the file's records."""
    data = b"\n".join(lines)
    if trailing and lines:
        data += b"\n"
    expected = data.split(b"\n")
    if expected and expected[-1] == b"":
        expected.pop()
    assert lines_via_splits(data, split_size) == expected


# ------------------------------------------------------- oversized records
def test_record_longer_than_lookahead_raises():
    """A line that cannot be completed within the look-ahead window must
    fail loudly instead of silently truncating the job's input."""
    import pytest
    from repro.core.splitread import RecordTooLong

    long_line = b"x" * 500
    data = b"short\n" + long_line + b"\ntail\n"
    # Window of 100 bytes starting inside the long line, not at EOF.
    with pytest.raises(RecordTooLong):
        split_text_lines(data[6:106], base=6, split_end=50, first=False,
                         at_eof=False)


def test_unterminated_tail_is_valid_at_eof():
    data = b"alpha\nbeta"
    got = split_text_lines(data, base=0, split_end=len(data), first=True,
                           at_eof=True)
    assert got == [b"alpha", b"beta"]


def test_oversized_record_detected_end_to_end():
    """Through the engine: one giant line > LOOKAHEAD crashes the job."""
    import pytest
    from repro.apps import WordCountApp
    from repro.core import JobConfig, run_glasswing
    from repro.core.splitread import LOOKAHEAD, RecordTooLong
    from repro.hw.presets import das4_cluster

    giant = b"word " * (LOOKAHEAD // 4) + b"\n"  # one ~10 KiB-word line
    data = (b"normal line\n" * 400) + giant + (b"more lines\n" * 400)
    with pytest.raises(RecordTooLong):
        run_glasswing(WordCountApp(), {"f": data}, das4_cluster(nodes=1),
                      JobConfig(chunk_size=2048, storage="local"))
