"""Tests for the storage backends the engines program against."""

import pytest

from repro.core.io import DFSBackend, LocalBackend, make_backend
from repro.hw import Cluster
from repro.hw.presets import das4_cluster
from repro.simt import Simulator


def make_cluster(n=3):
    sim = Simulator()
    return sim, Cluster(sim, das4_cluster(nodes=n))


def drive(sim, gen):
    p = sim.process(gen)
    sim.run()
    return p.value


def test_factory_dispatch():
    sim, cluster = make_cluster()
    assert isinstance(make_backend("dfs", cluster), DFSBackend)
    assert isinstance(make_backend("local", cluster), LocalBackend)
    with pytest.raises(ValueError):
        make_backend("s3", cluster)


def test_dfs_install_is_zero_time_and_readable():
    sim, cluster = make_cluster()
    be = make_backend("dfs", cluster, block_size=1000, replication=2)
    data = bytes(range(256)) * 10
    be.install("f", data)
    assert sim.now == 0.0
    assert be.size("f") == len(data)
    got = drive(sim, be.read(1, "f", 100, 500))
    assert got == data[100:600]
    assert sim.now > 0.0  # reading costs time


def test_dfs_install_rejects_duplicates():
    sim, cluster = make_cluster()
    be = make_backend("dfs", cluster)
    be.install("f", b"x")
    with pytest.raises(FileExistsError):
        be.install("f", b"y")


def test_dfs_locations_spread_over_cluster():
    sim, cluster = make_cluster(n=4)
    be = make_backend("dfs", cluster, block_size=100, replication=2)
    be.install("f", b"z" * 1000)
    locs = be.locations("f")
    assert len(locs) == 10
    primaries = {l.replicas[0] for l in locs}
    assert len(primaries) == 4  # install spreads "writers" round-robin


def test_local_backend_replicates_everywhere():
    sim, cluster = make_cluster()
    be = make_backend("local", cluster)
    be.install("f", b"payload")
    for node_id in range(3):
        assert drive(sim, be.read(node_id, "f", 0, 7)) == b"payload"
    assert be.locations("f") is None


def test_local_read_never_touches_network():
    sim, cluster = make_cluster()
    be = make_backend("local", cluster)
    be.install("f", b"q" * 100_000)
    drive(sim, be.read(2, "f", 0, 100_000))
    assert cluster.network.bytes_moved == 0


def test_write_chunk_with_replication_uses_network():
    sim, cluster = make_cluster()
    be = make_backend("dfs", cluster)
    drive(sim, be.write_chunk(0, 100_000, replication=3))
    assert cluster.network.bytes_moved == 200_000  # two remote replicas


def test_local_write_chunk_stays_local():
    sim, cluster = make_cluster()
    be = make_backend("local", cluster)
    drive(sim, be.write_chunk(1, 100_000, replication=3))
    assert cluster.network.bytes_moved == 0


def test_purge_caches_makes_rereads_cost_again():
    sim, cluster = make_cluster()
    be = make_backend("dfs", cluster, block_size=100_000)
    be.install("f", b"c" * 100_000)
    drive(sim, be.read(0, "f", 0, 100_000))
    t1 = sim.now
    drive(sim, be.read(0, "f", 0, 100_000))  # cached: cheap
    cached_cost = sim.now - t1
    be.purge_caches()
    t2 = sim.now
    drive(sim, be.read(0, "f", 0, 100_000))
    assert sim.now - t2 > cached_cost
