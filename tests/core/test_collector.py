"""Tests for the map-output collectors (hash table vs buffer pool)."""

import pytest

from repro.apps.wordcount import WordCountApp
from repro.core.collector import collect_map_output, hash_contention
from repro.hw.presets import CPU_TYPE1, GTX480


APP = WordCountApp()
REPETITIVE = [(b"the", 1)] * 60 + [(b"fox", 1)] * 30 + [(b"dog", 1)] * 10
SPARSE = [(b"w%d" % i, 1) for i in range(100)]


def test_hash_contention_bounds():
    assert hash_contention(0, 0) == 0.0
    assert hash_contention(100, 100) == 0.0
    assert hash_contention(100, 1) == pytest.approx(0.99)
    assert 0.0 <= hash_contention(50, 10) <= 1.0


def test_buffer_collector_passes_pairs_through():
    out, extra = collect_map_output("buffer", APP, CPU_TYPE1, REPETITIVE,
                                    use_combiner=False, chunk_index=0)
    assert out.pairs == REPETITIVE
    assert out.decode_items == 100
    assert extra.atomic_intensity == pytest.approx(0.05)


def test_hash_with_combiner_aggregates():
    out, extra = collect_map_output("hash", APP, CPU_TYPE1, REPETITIVE,
                                    use_combiner=True, chunk_index=0)
    assert sorted(out.pairs) == [(b"dog", 10), (b"fox", 30), (b"the", 60)]
    assert out.decode_items == 3


def test_hash_without_combiner_keeps_all_values_grouped():
    out, extra = collect_map_output("hash", APP, CPU_TYPE1, REPETITIVE,
                                    use_combiner=False, chunk_index=0)
    assert len(out.pairs) == 100           # values preserved
    assert out.decode_items == 3           # but decoded per unique key
    # Compaction kernel: values of one key are contiguous.
    keys = [k for k, _ in out.pairs]
    assert keys == sorted(keys)
    # The compaction kernel costs an extra launch (Table II, config ii).
    assert extra.launches >= 1


def test_combiner_shrinks_intermediate_volume():
    with_comb, _ = collect_map_output("hash", APP, CPU_TYPE1, REPETITIVE,
                                      use_combiner=True, chunk_index=0)
    without, _ = collect_map_output("hash", APP, CPU_TYPE1, REPETITIVE,
                                    use_combiner=False, chunk_index=0)
    assert with_comb.raw_bytes < without.raw_bytes


def test_repetitive_keys_contend_on_hash_table():
    _, rep = collect_map_output("hash", APP, CPU_TYPE1, REPETITIVE,
                                use_combiner=True, chunk_index=0)
    _, sparse = collect_map_output("hash", APP, CPU_TYPE1, SPARSE,
                                   use_combiner=True, chunk_index=0)
    assert rep.atomic_intensity > sparse.atomic_intensity
    assert sparse.atomic_intensity == 0.0


def test_buffer_kernel_cheaper_than_hash_on_repetitive_keys():
    """The paper's config (iii) effect: simple collection lowers kernel
    time for WordCount's repetitive workload."""
    _, hash_extra = collect_map_output("hash", APP, CPU_TYPE1, REPETITIVE,
                                       use_combiner=True, chunk_index=0)
    _, buf_extra = collect_map_output("buffer", APP, CPU_TYPE1, REPETITIVE,
                                      use_combiner=False, chunk_index=0)
    assert buf_extra.time_on(CPU_TYPE1) < hash_extra.time_on(CPU_TYPE1)


def test_gpu_pays_more_for_contention():
    _, extra = collect_map_output("hash", APP, GTX480, REPETITIVE,
                                  use_combiner=True, chunk_index=0)
    base_like = extra.roofline_on(GTX480) / (
        1.0 + GTX480.atomic_penalty * extra.atomic_intensity)
    cpu_pen = extra.roofline_on(CPU_TYPE1) / (
        1.0 + CPU_TYPE1.atomic_penalty * extra.atomic_intensity)
    assert extra.atomic_intensity > 0.5
    assert GTX480.atomic_penalty > CPU_TYPE1.atomic_penalty


def test_unknown_collector_rejected():
    with pytest.raises(ValueError):
        collect_map_output("magic", APP, CPU_TYPE1, [], False, 0)


def test_combiner_on_buffer_collector_rejected():
    with pytest.raises(ValueError):
        collect_map_output("buffer", APP, CPU_TYPE1, [], True, 0)


def test_empty_pairs():
    out, extra = collect_map_output("hash", APP, CPU_TYPE1, [],
                                    use_combiner=True, chunk_index=3)
    assert out.pairs == []
    assert out.raw_bytes == 0
    assert out.chunk_index == 3
