"""Reduce-side fine-grained parallelism (§III-C's two mechanisms)."""

import pytest

from repro.apps import KMeansApp
from repro.apps.datagen import kmeans_centers, kmeans_points, wiki_text
from repro.apps.wordcount import WordCountApp
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.hw.specs import KiB


def run_km(threads_per_key, concurrent_keys=4096, k=8):
    """Few keys, heavy values: the parallel-reduction showcase."""
    pts = kmeans_points(60_000, 4, seed=131)
    app = KMeansApp(kmeans_centers(k, 4, seed=132), cost_scale=64)
    return run_glasswing(
        app, {"p": pts}, das4_cluster(nodes=1),
        JobConfig(chunk_size=64 * KiB, storage="local",
                  use_combiner=False,
                  reduce_threads_per_key=threads_per_key,
                  concurrent_keys=concurrent_keys))


def test_parallel_reduction_within_keys_speeds_up_reduce():
    """'Applications can choose to process each single key with multiple
    threads.  This is advantageous to compute-intensive applications.'
    With only 8 keys, a single thread per key leaves the device idle."""
    serial = run_km(threads_per_key=1)
    parallel = run_km(threads_per_key=16)
    k_serial = serial.metrics.stage_time("reduce", "kernel", "node0")
    k_parallel = parallel.metrics.stage_time("reduce", "kernel", "node0")
    assert k_parallel < 0.75 * k_serial, (k_serial, k_parallel)


def test_both_mechanisms_compose():
    """Concurrent keys and threads-per-key multiply the used width."""
    both = run_km(threads_per_key=4, concurrent_keys=4)
    neither = run_km(threads_per_key=1, concurrent_keys=1)
    assert both.metrics.stage_time("reduce", "kernel", "node0") < \
        neither.metrics.stage_time("reduce", "kernel", "node0")


def test_accounting_invariants():
    """Every record mapped once; pair counts consistent with outputs."""
    inputs = {"wiki": wiki_text(200_000, seed=133)}
    res = run_glasswing(WordCountApp(), inputs, das4_cluster(nodes=3),
                        JobConfig(chunk_size=32 * KiB))
    total_records = len(
        WordCountApp.record_format.split_records(inputs["wiki"]))
    assert res.stats["records_mapped"] == total_records
    out_keys = [k for k, _ in res.output_pairs()]
    assert res.stats["keys_reduced"] == len(out_keys) == len(set(out_keys))
    # Word-count conservation: sum of counts == number of words mapped.
    total_words = len(inputs["wiki"].split())
    assert sum(v for _, v in res.output_pairs()) == total_words
