"""Tests for the intermediate-data manager (cache, flush, merge)."""

import pytest

from repro.apps.wordcount import WordCountApp
from repro.core.config import JobConfig
from repro.core.data import SortedRun
from repro.core.intermediate import IntermediateManager
from repro.hw import Node
from repro.hw.presets import type1_node
from repro.simt import Simulator, Timeline


def make_manager(owned=(0, 1), cache_threshold=10_000, max_files=2,
                 merger_threads=None, partitions_per_node=None):
    sim = Simulator()
    tl = Timeline()
    node = Node(sim, type1_node(), 0, timeline=tl)
    app = WordCountApp()
    P = partitions_per_node or len(owned)
    cfg = JobConfig(cache_threshold=cache_threshold,
                    max_intermediate_files=max_files,
                    partitions_per_node=P,
                    merger_threads=merger_threads)
    mgr = IntermediateManager(sim, node, app, cfg, tl, list(owned))
    return sim, tl, node, mgr


def run_of(words, each_bytes=20):
    pairs = sorted((w, 1) for w in words)
    return SortedRun(pairs, raw_bytes=len(pairs) * each_bytes)


def drive(sim, gen):
    p = sim.process(gen)
    sim.run()
    return p.value


def test_add_and_read_back():
    sim, tl, node, mgr = make_manager()
    mgr.add_run(0, run_of([b"a", b"b"]))
    mgr.add_run(0, run_of([b"c"]))
    drive(sim, mgr.finalize())
    runs, disk_bytes, disk_raw = mgr.read_partition(0)
    pairs = [p for r in runs for p in r.pairs]
    assert sorted(pairs) == [(b"a", 1), (b"b", 1), (b"c", 1)]


def test_unowned_partition_rejected():
    sim, tl, node, mgr = make_manager(owned=(0,))
    with pytest.raises(KeyError):
        mgr.add_run(5, run_of([b"x"]))


def test_empty_run_ignored():
    sim, tl, node, mgr = make_manager()
    mgr.add_run(0, SortedRun([], 0))
    assert mgr.cached_bytes == 0


def test_cache_threshold_triggers_flush():
    sim, tl, node, mgr = make_manager(cache_threshold=1_000)
    # 100 pairs x 20 bytes = 2000 > 1000: flush must fire.
    mgr.add_run(0, run_of([b"w%03d" % i for i in range(100)]))
    sim.run()
    assert mgr.cached_bytes <= 1_000
    assert mgr.disk_run_count(0) >= 1
    assert mgr.spilled_bytes > 0
    assert len(tl.by_category("merge.flush")) >= 1


def test_below_threshold_stays_in_memory():
    sim, tl, node, mgr = make_manager(cache_threshold=1_000_000)
    mgr.add_run(0, run_of([b"a", b"b", b"c"]))
    sim.run()
    assert mgr.cached_bytes > 0
    assert mgr.disk_run_count(0) == 0


def test_flush_merges_runs_sorted():
    sim, tl, node, mgr = make_manager(cache_threshold=100)
    mgr.add_run(0, run_of([b"banana", b"date"]))
    mgr.add_run(0, run_of([b"apple", b"cherry"]))
    sim.run()
    drive(sim, mgr.finalize())
    runs, _, _ = mgr.read_partition(0)
    for r in runs:
        keys = [k for k, _ in r.pairs]
        assert keys == sorted(keys)


def test_compaction_bounds_file_count():
    sim, tl, node, mgr = make_manager(cache_threshold=50, max_files=2)
    for batch in range(8):
        mgr.add_run(0, run_of([b"k%d-%d" % (batch, i) for i in range(10)]))
        sim.run()
    drive(sim, mgr.finalize())
    assert mgr.disk_run_count(0) <= 2
    # All 80 pairs survive the merging.
    runs, _, _ = mgr.read_partition(0)
    assert sum(len(r.pairs) for r in runs) == 80


def test_merge_delay_recorded():
    sim, tl, node, mgr = make_manager(cache_threshold=50, max_files=1)
    for batch in range(6):
        mgr.add_run(0, run_of([b"x%d-%d" % (batch, i) for i in range(10)]))
    drive(sim, mgr.finalize())
    spans = tl.by_category("merge.delay")
    assert len(spans) == 1
    assert mgr.merge_delay == spans[0].duration
    assert mgr.merge_delay > 0


def test_finalize_idempotent_state():
    sim, tl, node, mgr = make_manager()
    mgr.add_run(1, run_of([b"z"]))
    drive(sim, mgr.finalize())
    runs, _, _ = mgr.read_partition(1)
    assert [p for r in runs for p in r.pairs] == [(b"z", 1)]


def test_data_survives_flush_and_compact_cycles():
    """No pair is ever lost or duplicated through the cache machinery."""
    sim, tl, node, mgr = make_manager(owned=(0, 1), cache_threshold=200,
                                      max_files=1)
    expected = []
    for batch in range(10):
        words = [b"w%02d-%02d" % (batch, i) for i in range(12)]
        pid = batch % 2
        mgr.add_run(pid, run_of(words))
        expected.extend((w, 1) for w in words)
        sim.run()
    drive(sim, mgr.finalize())
    got = []
    for pid in (0, 1):
        runs, _, _ = mgr.read_partition(pid)
        for r in runs:
            got.extend(r.pairs)
    assert sorted(got) == sorted(expected)


def test_more_merger_threads_speed_up_finalize():
    def delay_with(mergers, partitions):
        sim, tl, node, mgr = make_manager(
            owned=tuple(range(partitions)), cache_threshold=100,
            max_files=1, merger_threads=mergers,
            partitions_per_node=partitions)
        for batch in range(12):
            pid = batch % partitions
            mgr.add_run(pid, run_of([b"m%d-%d" % (batch, i)
                                     for i in range(40)]))
        t0 = sim.now
        drive(sim, mgr.finalize())
        return mgr.merge_delay

    slow = delay_with(mergers=1, partitions=4)
    fast = delay_with(mergers=4, partitions=4)
    assert fast < slow
