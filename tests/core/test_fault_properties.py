"""Property-based fault-tolerance guarantees (§III-E).

Three properties over *random* fault schedules drawn from
:meth:`FaultPlan.seeded`:

1. **output invariance** — any schedule yields the fault-free output;
2. **liveness** — the job always completes (the engine raises
   ``RuntimeError`` on deadlock, so completion is the assertion);
3. **monotone degradation** — job time never decreases as failures are
   added to a schedule.

Runs under `hypothesis` when importable and falls back to a fixed seed
sweep otherwise, so the guarantees hold in minimal environments too.
"""

import functools

import pytest

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.core import JobConfig, run_glasswing
from repro.core.faults import FaultPlan
from repro.hw.presets import das4_cluster

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:    # pragma: no cover - hypothesis is an optional extra
    HAVE_HYPOTHESIS = False

NODES = 3
CHUNK = 32_768
INPUT_BYTES = 200_000
N_SPLITS = -(-INPUT_BYTES // CHUNK)
FALLBACK_SEEDS = tuple(range(8))


def _config(**kw):
    return JobConfig(chunk_size=CHUNK, input_replication=NODES, **kw)


def _run(faults=None, config=None):
    return run_glasswing(WordCountApp(), {"wiki": wiki_text(INPUT_BYTES, seed=61)},
                         das4_cluster(nodes=NODES), config or _config(),
                         faults=faults)


@functools.lru_cache(maxsize=1)
def golden():
    """Fault-free baseline (cached at module level: hypothesis examples
    cannot use function-scoped fixtures)."""
    return _run()


def canonical(res):
    return sorted(res.output_pairs(), key=repr)


def _seeded_plan(seed: int) -> FaultPlan:
    g = golden()
    return FaultPlan.seeded(
        seed, n_splits=N_SPLITS, n_nodes=NODES,
        n_partitions=NODES * _config().partitions_per_node,
        map_rate=0.4, reduce_rate=0.2, straggler_rate=0.3,
        node_crash_count=seed % 2,
        crash_window=(0.2 * g.map_time, 0.9 * g.map_time))


def check_output_invariant(seed: int) -> None:
    """Output invariance + liveness for one random schedule.  Odd seeds
    also enable speculation, so the race path is fuzzed too."""
    plan = _seeded_plan(seed)
    cfg = _config(speculative_execution=bool(seed % 2))
    res = _run(faults=plan, config=cfg)    # completing at all = no deadlock
    assert canonical(res) == canonical(golden())
    assert res.job_time >= golden().job_time * (1 - 1e-9)
    if plan.node_crashes:
        assert res.metrics.node_crashes <= len(plan.node_crashes)


def check_monotone(seed: int) -> None:
    """Adding failures to a schedule never makes the job faster."""
    base = FaultPlan.seeded(seed, n_splits=N_SPLITS, map_rate=0.3)
    grown = dict(base.map_failures)
    grown[seed % N_SPLITS] = grown.get(seed % N_SPLITS, 0) + 1
    t_base = _run(faults=FaultPlan(map_failures=base.map_failures)).job_time
    t_grown = _run(faults=FaultPlan(map_failures=grown)).job_time
    assert t_grown >= t_base * (1 - 1e-9)


if HAVE_HYPOTHESIS:

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**20))
    def test_random_schedules_preserve_output(seed):
        check_output_invariant(seed)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=2**20))
    def test_more_failures_never_faster(seed):
        check_monotone(seed)

else:    # pragma: no cover - exercised only without hypothesis

    @pytest.mark.parametrize("seed", FALLBACK_SEEDS)
    def test_random_schedules_preserve_output(seed):
        check_output_invariant(seed)

    @pytest.mark.parametrize("seed", FALLBACK_SEEDS[:4])
    def test_more_failures_never_faster(seed):
        check_monotone(seed)


def test_failure_ladder_is_monotone():
    """Deterministic ladder: 0..3 failures on split 0 gives a
    non-decreasing job-time sequence."""
    times = [_run(faults=FaultPlan(map_failures={0: k})).job_time
             for k in range(4)]
    assert times == sorted(times)
    assert times[-1] > times[0]


def test_seeded_plans_are_reproducible():
    """The same seed always yields the same schedule object."""
    a, b = _seeded_plan(1234), _seeded_plan(1234)
    assert a.map_failures == b.map_failures
    assert a.reduce_failures == b.reduce_failures
    assert a.stragglers == b.stragglers
    assert a.node_crashes == b.node_crashes
    assert a.progress_at_failure == b.progress_at_failure
