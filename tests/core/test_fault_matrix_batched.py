"""Fault matrix × batched execution (``batch_size=64``).

A batch is a *simulation* unit, not a recovery unit: the durable shuffle
ledger marks whole splits, so a crash landing mid-batch must re-execute
the whole split — never dropping the batches already collected nor
duplicating the ones that survived in the partition accumulator.  Every
cell re-asserts the two batched-specific guarantees on top of the output
equality the base matrix checks:

* ``leaked_buffer_slots == 0`` — the shared per-item slot (carried by a
  window's final batch) is reclaimed even when the interrupt lands
  between two batches of one split;
* recovery output equality against the fault-free golden run.
"""

import pytest

from repro.core.faults import FaultPlan, NodeCrash

from tests.core.test_fault_matrix import CASES

BATCH = 64
SEVERITIES = (1, 3)


@pytest.fixture(scope="module", params=sorted(CASES))
def cell(request):
    """(case, batched config, fault-free batched golden) per app."""
    case = CASES[request.param]
    cfg = case.config().with_(batch_size=BATCH)
    return case, cfg, case.run(config=cfg)


def test_batched_fault_free_matches_unbatched_golden(cell):
    """Baseline sanity for the matrix: batching alone changes nothing."""
    case, _cfg, golden = cell
    case.assert_same_output(golden, case.run())
    assert golden.stats["batch_size"] == BATCH
    assert golden.stats["leaked_buffer_slots"] == 0


@pytest.mark.parametrize("count", SEVERITIES)
def test_map_crashes_batched(cell, count):
    case, cfg, golden = cell
    plan = FaultPlan(map_failures={s: 1 for s in range(count)})
    res = case.run(faults=plan, config=cfg)
    case.assert_same_output(res, golden)
    assert res.stats["leaked_buffer_slots"] == 0
    assert res.metrics.reexecutions == count
    assert res.stats["task_failures"] == count
    assert res.job_time > golden.job_time


@pytest.mark.parametrize("count", SEVERITIES)
def test_reduce_crashes_batched(cell, count):
    case, cfg, golden = cell
    occupied = [pid for pid in sorted(golden.output) if golden.output[pid]]
    assert len(occupied) >= count
    plan = FaultPlan(reduce_failures={p: 1 for p in occupied[:count]})
    res = case.run(faults=plan, config=cfg)
    case.assert_same_output(res, golden)
    assert res.stats["leaked_buffer_slots"] == 0
    assert res.metrics.reexecutions == count
    assert res.metrics.wasted_seconds > 0


@pytest.mark.parametrize("count", SEVERITIES)
def test_node_crashes_batched(cell, count):
    """Crashes staggered through the map window land between (and inside)
    batch boundaries; the killed node's partial split accumulators die
    with it and recovery re-executes whole splits on the survivors."""
    case, cfg, golden = cell
    crashes = tuple(NodeCrash(node=i + 1,
                              at=golden.map_time * (0.3 + 0.2 * i))
                    for i in range(count))
    res = case.run(faults=FaultPlan(node_crashes=crashes), config=cfg)
    case.assert_same_output(res, golden)
    assert res.stats["leaked_buffer_slots"] == 0
    assert sorted(res.stats["dead_nodes"]) == [c.node for c in crashes]
    assert res.metrics.reexecutions == res.stats["reexecuted_splits"]
    assert res.job_time > golden.job_time


@pytest.mark.parametrize("count", SEVERITIES)
def test_stragglers_with_speculation_batched(cell, count):
    case, cfg, golden = cell
    plan = FaultPlan(stragglers={s: 6.0 for s in range(count)})
    res = case.run(faults=plan,
                   config=cfg.with_(speculative_execution=True))
    case.assert_same_output(res, golden)
    assert res.stats["leaked_buffer_slots"] == 0
    assert res.metrics.reexecutions == 0
    assert res.metrics.speculative_wins <= res.metrics.speculative_launches


def test_mid_batch_node_crash_neither_drops_nor_duplicates():
    """The sharpest cell: kill a node at a time that falls strictly
    inside one split's batch sequence (1/64 of the way into the map
    phase) and check the recovered output pair-for-pair."""
    case = CASES["wordcount"]
    cfg = case.config().with_(batch_size=BATCH)
    golden = case.run(config=cfg)
    res = case.run(config=cfg, faults=FaultPlan(
        node_crashes=(NodeCrash(node=1, at=golden.map_time / BATCH),)))
    case.assert_same_output(res, golden)
    assert res.stats["leaked_buffer_slots"] == 0
    assert res.metrics.node_crashes == 1
