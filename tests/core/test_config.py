"""Tests for the JobConfig configuration API."""

import pytest

from repro.core.config import JobConfig
from repro.hw.specs import DeviceKind


def test_defaults_are_valid():
    cfg = JobConfig()
    assert cfg.buffering == 2
    assert cfg.device is DeviceKind.CPU
    assert cfg.collector == "hash"
    assert cfg.use_combiner


def test_buffering_levels():
    for level in (1, 2, 3):
        assert JobConfig(buffering=level).buffering == level
    with pytest.raises(ValueError):
        JobConfig(buffering=0)
    with pytest.raises(ValueError):
        JobConfig(buffering=4)


def test_combiner_requires_hash_collector():
    JobConfig(collector="buffer", use_combiner=False)  # fine
    with pytest.raises(ValueError):
        JobConfig(collector="buffer", use_combiner=True)


def test_unknown_collector_and_storage():
    with pytest.raises(ValueError):
        JobConfig(collector="magic")
    with pytest.raises(ValueError):
        JobConfig(storage="tape")


def test_positive_int_knobs_validated():
    for field in ("partitions_per_node", "partitioner_threads",
                  "concurrent_keys", "keys_per_thread",
                  "reduce_threads_per_key", "output_replication"):
        with pytest.raises(ValueError):
            JobConfig(**{field: 0})


def test_merger_threads_defaults_to_partitions():
    assert JobConfig(partitions_per_node=5).effective_merger_threads == 5
    assert JobConfig(partitions_per_node=5,
                     merger_threads=2).effective_merger_threads == 2


def test_with_override():
    cfg = JobConfig()
    cfg2 = cfg.with_(buffering=3, partitions_per_node=16)
    assert cfg2.buffering == 3
    assert cfg2.partitions_per_node == 16
    assert cfg.buffering == 2  # original untouched


def test_chunk_size_validation():
    with pytest.raises(ValueError):
        JobConfig(chunk_size=0)
