"""Property-based tests: batched collection == per-record collection.

The batched map kernel feeds the collector one *batch* of emitted pairs
at a time instead of one split's worth (or, at ``batch_size=1``, one
record's).  Whatever the slicing, the data that reaches the partitioner
must be the same: grouped totals, combiner results and (for the buffer
collector) the exact pair stream and additive cost totals.  Key
interning is a host-memory optimisation and must never change results.
"""

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.apps.wordcount import WordCountApp
from repro.core.batching import slice_batches
from repro.core.collector import KeyInterner, collect_map_output
from repro.hw.presets import CPU_TYPE1

APP = WordCountApp()

# Small alphabet so streams repeat keys (the interesting case for the
# hash collector, the combiner and interning).
_keys = st.sampled_from([b"the", b"fox", b"dog", b"a", b"b", b"lazy"])
_values = st.integers(min_value=1, max_value=9)
_streams = st.lists(st.tuples(_keys, _values), max_size=120)
_batch_sizes = st.integers(min_value=1, max_value=140)


def _group_sum(pairs):
    totals = defaultdict(int)
    for k, v in pairs:
        totals[k] += v
    return dict(totals)


def _collect_stream(collector, pairs, batch_size, use_combiner,
                    interner=None):
    """Collect a stream batch-by-batch; returns (all pairs, extra costs)."""
    collected, extras = [], []
    for chunk_index, batch in enumerate(slice_batches(pairs, batch_size)):
        out, extra = collect_map_output(
            collector, APP, CPU_TYPE1, list(batch),
            use_combiner=use_combiner, chunk_index=chunk_index,
            interner=interner)
        collected.extend(out.pairs)
        extras.append(extra)
    return collected, extras


@given(pairs=_streams, batch=_batch_sizes, intern=st.booleans())
@settings(max_examples=60, deadline=None)
def test_hash_collector_grouped_totals_invariant(pairs, batch, intern):
    interner = KeyInterner() if intern else None
    batched, _ = _collect_stream("hash", pairs, batch,
                                 use_combiner=False, interner=interner)
    per_record, _ = _collect_stream("hash", pairs, 1, use_combiner=False)
    assert _group_sum(batched) == _group_sum(per_record)
    # Value multiset also survives (compaction only reorders).
    assert sorted(batched) == sorted(per_record)


@given(pairs=_streams, batch=_batch_sizes, intern=st.booleans())
@settings(max_examples=60, deadline=None)
def test_combiner_results_invariant(pairs, batch, intern):
    """Partial aggregation per batch must pre-reduce to the same totals
    the per-record run produces (the combiner is associative)."""
    interner = KeyInterner() if intern else None
    batched, _ = _collect_stream("hash", pairs, batch,
                                 use_combiner=True, interner=interner)
    per_record, _ = _collect_stream("hash", pairs, 1, use_combiner=True)
    assert _group_sum(batched) == _group_sum(per_record)


@given(pairs=_streams, batch=_batch_sizes)
@settings(max_examples=60, deadline=None)
def test_buffer_collector_stream_and_costs_exactly_additive(pairs, batch):
    batched, extras_b = _collect_stream("buffer", pairs, batch,
                                        use_combiner=False)
    per_record, extras_1 = _collect_stream("buffer", pairs, 1,
                                           use_combiner=False)
    # The buffer pool passes pairs through untouched, in order.
    assert batched == pairs
    assert per_record == pairs
    # And its charged cost is exactly additive in the emitted pairs.
    assert sum(e.flops for e in extras_b) == sum(e.flops for e in extras_1)
    assert (sum(e.device_bytes for e in extras_b)
            == sum(e.device_bytes for e in extras_1))
    assert sum(e.launches for e in extras_b) == 0
    assert sum(e.launches for e in extras_1) == 0


@given(pairs=_streams, batch=_batch_sizes, combiner=st.booleans())
@settings(max_examples=60, deadline=None)
def test_interning_changes_identity_not_results(pairs, batch, combiner):
    interner = KeyInterner()
    with_interner, extras_i = _collect_stream(
        "hash", pairs, batch, use_combiner=combiner, interner=interner)
    without, extras_n = _collect_stream(
        "hash", pairs, batch, use_combiner=combiner, interner=None)
    assert with_interner == without
    # Same charged costs, pair for pair.
    assert [(e.flops, e.device_bytes, e.atomic_intensity, e.launches)
            for e in extras_i] \
        == [(e.flops, e.device_bytes, e.atomic_intensity, e.launches)
            for e in extras_n]
    # Every occurrence of a key in the interned output is one object.
    canon = {}
    for k, _v in with_interner:
        assert canon.setdefault(k, k) is k
    assert len(interner) == len({k for k, _ in pairs})


def test_interner_tolerates_unhashable_keys():
    interner = KeyInterner()
    unhashable = [1, 2]
    assert interner.intern(unhashable) is unhashable
    assert len(interner) == 0
    k = b"key"
    assert interner.intern(k) is k
    assert interner.intern(b"key") is k
