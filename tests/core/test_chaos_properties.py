"""Property-based chaos: arbitrary seeded join/leave/failover schedules
must leave the job output identical to the static run, leak nothing and
replay deterministically.

Mirrors tests/core/test_fault_properties.py: with ``hypothesis``
installed the schedules are drawn from a strategy; without it a fixed
seed sweep keeps the invariants locked in.  The application and the
scheduling policy are both derived from the seed, so the sweep roams
the whole {app} x {scheduler} x {schedule} space.
"""

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:    # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False

from repro.core.faults import FaultPlan

from tests.core.test_chaos_matrix import (CASES, FAILOVER, HALF, NODES,
                                          REPLICAS, SCHEDULERS, canonical,
                                          golden)

FALLBACK_SEEDS = tuple(range(10))


def _pick(seed):
    """(app, scheduler) for one seed — roams the full product space."""
    apps = sorted(CASES)
    return apps[seed % len(apps)], SCHEDULERS[(seed // len(apps)) % len(SCHEDULERS)]


def _seeded_plan(seed, reference):
    """Random membership churn (plus a sprinkle of classic map crashes)
    inside the reference run's map window."""
    return FaultPlan.seeded(
        seed, n_splits=8, map_rate=0.15,
        node_join_count=seed % (NODES - HALF + 1),
        node_leave_count=(seed // 5) % 2,
        coordinator_crash_count=(seed // 7) % REPLICAS,
        membership_window=(0.1 * reference.map_time,
                           0.9 * reference.map_time))


def _run_chaos(seed):
    app, scheduler = _pick(seed)
    case = CASES[app]
    base = golden(app, scheduler, active_nodes=HALF, replicas=REPLICAS)
    plan = _seeded_plan(seed, base)
    res = case.run(scheduler, faults=plan, active_nodes=HALF,
                   coordinator_replicas=REPLICAS,
                   failover_timeout=FAILOVER)
    return case, base, plan, res


def check_output_invariant(seed):
    """Completing at all = no deadlock; then the headline guarantee plus
    conservation of every membership resource."""
    case, base, plan, res = _run_chaos(seed)
    case.assert_same_output(res, base)
    assert res.stats["leaked_buffer_slots"] == 0
    # Conservation: nobody joins or drains beyond the schedule, and the
    # active set follows the transitions that actually landed.
    assert len(res.stats["joined_nodes"]) <= len(plan.node_joins)
    assert len(res.stats["departed_nodes"]) <= len(plan.node_leaves)
    assert res.stats["dead_nodes"] == []
    assert res.stats["coordinator_failovers"] <= len(plan.coordinator_crashes)
    expected_active = (HALF + len(res.stats["joined_nodes"])
                       - len(res.stats["departed_nodes"]))
    assert res.stats["final_active_nodes"] == expected_active
    # Joiners come from the standby half; drains only take live nodes.
    joined = set(res.stats["joined_nodes"])
    departed = set(res.stats["departed_nodes"])
    assert joined.isdisjoint(range(HALF))
    assert departed <= set(range(NODES))
    # The membership record matches the stats and is in fire order.
    events = res.stats["membership_events"]
    assert sorted(e["node"] for e in events if e["kind"] == "join") == \
        res.stats["joined_nodes"]
    assert sorted(e["node"] for e in events if e["kind"] == "leave") == \
        res.stats["departed_nodes"]
    assert all(a["at"] <= b["at"] for a, b in zip(events, events[1:]))


def check_replay_identical(seed):
    """The same seed replays to the same timeline: identical output,
    identical membership record, identical virtual clock."""
    _, _, _, first = _run_chaos(seed)
    _, _, _, second = _run_chaos(seed)
    assert canonical(first) == canonical(second)
    assert first.job_time == second.job_time
    assert first.stats["membership_events"] == second.stats["membership_events"]
    assert first.stats["coordinator_failovers"] == \
        second.stats["coordinator_failovers"]
    assert first.stats["network_bytes"] == second.stats["network_bytes"]


if HAVE_HYPOTHESIS:

    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=0, max_value=2**20))
    def test_random_membership_schedules_preserve_output(seed):
        check_output_invariant(seed)

    @settings(max_examples=4, deadline=None)
    @given(st.integers(min_value=0, max_value=2**20))
    def test_random_membership_schedules_replay_identically(seed):
        check_replay_identical(seed)

else:    # pragma: no cover - exercised only without hypothesis

    @pytest.mark.parametrize("seed", FALLBACK_SEEDS)
    def test_random_membership_schedules_preserve_output(seed):
        check_output_invariant(seed)

    @pytest.mark.parametrize("seed", FALLBACK_SEEDS[:4])
    def test_random_membership_schedules_replay_identically(seed):
        check_replay_identical(seed)


def test_schedule_space_is_actually_roamed():
    """Sanity: the seed sweep hits more than one app, more than one
    scheduler and at least one non-empty schedule of each event kind."""
    seeds = range(40)
    apps = {_pick(s)[0] for s in seeds}
    scheds = {_pick(s)[1] for s in seeds}
    assert apps == set(CASES)
    assert scheds == set(SCHEDULERS)
    ref = golden(sorted(CASES)[0], "static-affinity",
                 active_nodes=HALF, replicas=REPLICAS)
    plans = [_seeded_plan(s, ref) for s in seeds]
    assert any(p.node_joins for p in plans)
    assert any(p.node_leaves for p in plans)
    assert any(p.coordinator_crashes for p in plans)
    assert any(p.map_failures for p in plans)
