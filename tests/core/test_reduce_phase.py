"""Unit tests for the reduce pipeline's planning and grouping."""

import pytest

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.core import JobConfig, run_glasswing
from repro.core.reduce_phase import _group_pairs
from repro.hw.presets import das4_cluster


def test_group_pairs_merges_consecutive_keys():
    pairs = [(b"a", 1), (b"a", 2), (b"b", 3), (b"c", 4), (b"c", 5)]
    groups = _group_pairs(pairs)
    assert groups == [(b"a", [1, 2]), (b"b", [3]), (b"c", [4, 5])]


def test_group_pairs_empty():
    assert _group_pairs([]) == []


def test_group_pairs_single_key():
    assert _group_pairs([(b"x", 1)] * 4) == [(b"x", [1, 1, 1, 1])]


def run_wc(**cfg):
    inputs = {"f": wiki_text(300_000, seed=71)}
    return run_glasswing(WordCountApp(), inputs, das4_cluster(nodes=2),
                         JobConfig(chunk_size=65_536, storage="local",
                                   **cfg))


def test_each_key_reduced_exactly_once():
    res = run_wc()
    keys = [k for k, _ in res.output_pairs()]
    assert len(keys) == len(set(keys))
    assert res.stats["keys_reduced"] == len(keys)


def test_keys_stay_in_their_partition():
    """A key's output pairs must come from exactly one partition (the
    shuffle invariant that makes reduction correct)."""
    res = run_wc(partitions_per_node=4)
    seen = {}
    for pid, pairs in res.output.items():
        for key, _ in pairs:
            assert seen.setdefault(key, pid) == pid


def test_chunking_respects_concurrent_keys():
    res = run_wc(concurrent_keys=8, keys_per_thread=2)
    # Each reduce launch processed at most 16 keys, so the number of
    # input-stage spans is at least total_keys / 16.
    n_chunks = len(res.timeline.by_category("reduce.input"))
    total_keys = res.stats["keys_reduced"]
    assert n_chunks >= total_keys / 16


def test_reduce_reader_charges_disk_for_spilled_partitions():
    spilled = run_wc(cache_threshold=10_000, use_combiner=False)
    in_memory = run_wc(cache_threshold=1 << 30, use_combiner=False)
    d_spill = sum(s.duration for s in
                  spilled.timeline.by_category("reduce.input"))
    d_mem = sum(s.duration for s in
                in_memory.timeline.by_category("reduce.input"))
    assert d_spill > d_mem


def test_scratch_relaunches_for_huge_value_lists():
    """A key whose value list exceeds the per-launch budget relaunches
    with scratch-buffer state (§III-C)."""
    fast = run_wc(use_combiner=False)
    slow = run_wc(use_combiner=False, max_values_per_launch=8)
    # Same data, but tiny per-launch budgets force many relaunches.
    k_fast = fast.metrics.stage_time("reduce", "kernel")
    k_slow = slow.metrics.stage_time("reduce", "kernel")
    assert k_slow > k_fast
