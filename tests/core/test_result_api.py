"""Tests for the GlasswingResult public surface."""

import pytest

from repro.apps import TeraSortApp, WordCountApp
from repro.apps.datagen import teragen, wiki_text
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.storage.records import NO_COMPRESSION


@pytest.fixture(scope="module")
def result():
    inputs = {"wiki": wiki_text(150_000, seed=141)}
    return run_glasswing(WordCountApp(), inputs, das4_cluster(nodes=2),
                         JobConfig(chunk_size=32_768))


def test_output_pairs_iterates_partition_order(result):
    pids = sorted(result.output)
    expected = [pair for pid in pids for pair in result.output[pid]]
    assert list(result.output_pairs()) == expected


def test_sorted_output_is_canonical(result):
    out = result.sorted_output()
    keys = [k for k, _ in out]
    assert keys == sorted(keys)
    assert len(out) == len(list(result.output_pairs()))


def test_sorted_output_uses_natural_key_order():
    """Integer keys sort numerically, not as strings ("10" < "2")."""

    from repro.storage.records import KVSchema

    class CountByLength(WordCountApp):
        """Wordcount variant keyed by word length (int keys)."""
        name = "countlen"
        has_combiner = False
        inter_schema = KVSchema("cl-inter", key_bytes=lambda k: 4,
                                value_bytes=lambda v: 4)
        output_schema = KVSchema("cl-out", key_bytes=lambda k: 4,
                                 value_bytes=lambda v: 8)

        def map_batch(self, records):
            words = b"\n".join(records).split()
            return [(2 * len(word), 1) for word in words]

    inputs = {"wiki": wiki_text(60_000, seed=143)}
    res = run_glasswing(CountByLength(), inputs, das4_cluster(nodes=2),
                        JobConfig(chunk_size=16_384, use_combiner=False))
    keys = [k for k, _ in res.sorted_output()]
    assert all(isinstance(k, int) for k in keys)
    assert max(keys) > 9          # the repr-sort bug needs 2-digit keys
    assert keys == sorted(keys)   # 2 before 10, not "10" < "2"


def test_sorted_output_survives_mixed_key_types():
    """Heterogeneous keys fall back to type-tagged ordering, not a crash."""
    from repro.core.engine import GlasswingResult

    probe = GlasswingResult.__new__(GlasswingResult)
    probe.output = {0: [(10, 1), ("b", 2)], 1: [(2, 3), ("a", 4)]}
    out = probe.sorted_output()
    assert out == [(2, 3), (10, 1), ("a", 4), ("b", 2)]


def test_result_metadata(result):
    assert result.app_name == "wordcount"
    assert result.n_nodes == 2
    assert isinstance(result.config, JobConfig)
    assert result.stats["splits"] > 0
    assert len(result.timeline) > 0


def test_partition_ordering_carries_total_order():
    """For TeraSort, partition-ordered iteration IS the sorted output."""
    data = teragen(1_500, seed=142)
    app = TeraSortApp.from_input(data, sample_every=19)
    res = run_glasswing(app, {"t": data}, das4_cluster(nodes=3),
                        JobConfig(chunk_size=30_000, output_replication=1,
                                  compression=NO_COMPRESSION))
    keys = [k for k, _ in res.output_pairs()]
    assert keys == sorted(keys)
    # Partition boundary property: max(partition p) <= min(partition p+1).
    pids = sorted(res.output)
    for a, b in zip(pids, pids[1:]):
        if res.output[a] and res.output[b]:
            assert res.output[a][-1][0] <= res.output[b][0][0]


def test_metrics_accessible_from_result(result):
    bd = result.metrics.breakdown("map", "node0")
    assert bd["kernel"] > 0
    # result.map_time also covers the post-pipeline push drain, so the
    # pipelines' extent is a (close) lower bound.
    assert result.metrics.map_elapsed <= result.map_time
    assert result.metrics.map_elapsed >= 0.8 * result.map_time
