"""Tests for task-failure injection and re-execution (§III-E extension)."""

import pytest

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.baselines.reference import run_reference
from repro.core import JobConfig, run_glasswing
from repro.core.faults import FaultInjector, FaultPlan, NodeCrash
from repro.hw.presets import das4_cluster

from tests.conftest import assert_outputs_match

CHUNK = 65_536


@pytest.fixture(scope="module")
def inputs():
    return {"wiki": wiki_text(400_000, seed=51)}


def run(inputs, faults=None, **cfg):
    return run_glasswing(WordCountApp(), inputs, das4_cluster(nodes=2),
                         JobConfig(chunk_size=CHUNK, **cfg), faults=faults)


def test_injector_validation():
    with pytest.raises(ValueError):
        FaultInjector(progress_at_failure=1.5)
    with pytest.raises(ValueError):
        FaultInjector(fail_counts={0: -1})


def test_injector_plan_semantics():
    inj = FaultInjector(fail_counts={3: 2})
    assert inj.should_fail(3, 0)
    assert inj.should_fail(3, 1)
    assert not inj.should_fail(3, 2)
    assert not inj.should_fail(0, 0)


def test_output_correct_despite_failures(inputs):
    ref = run_reference(WordCountApp(), inputs)
    faults = FaultInjector(fail_counts={0: 1, 2: 2, 5: 1})
    res = run(inputs, faults=faults)
    assert_outputs_match(res.output_pairs(), ref)
    assert faults.total_failures == 4


def test_failures_cost_time(inputs):
    clean = run(inputs)
    faults = FaultInjector(fail_counts={i: 1 for i in range(6)})
    failed = run(inputs, faults=faults)
    assert failed.job_time > clean.job_time
    assert faults.wasted_seconds > 0


def test_failures_recorded_in_timeline(inputs):
    faults = FaultInjector(fail_counts={1: 3})
    res = run(inputs, faults=faults)
    spans = res.timeline.by_category("map.task_failure")
    assert len(spans) == 3
    assert all(s.meta["split"] == 1 for s in spans)
    assert [s.meta["attempt"] for s in spans] == [0, 1, 2]


def test_failure_free_plan_is_noop(inputs):
    clean = run(inputs)
    with_empty = run(inputs, faults=FaultInjector())
    assert with_empty.job_time == pytest.approx(clean.job_time)


def test_zero_progress_failures_waste_nothing(inputs):
    faults = FaultInjector(fail_counts={0: 1}, progress_at_failure=0.0)
    run(inputs, faults=faults)
    # A task that dies instantly wastes (almost) no kernel time.
    assert faults.wasted_seconds < 1e-3


# -- per-failure progress (the single-scalar generalisation) ----------------

def test_progress_spec_validation():
    """Every shape of ``progress_at_failure`` is range-checked up front,
    not at lookup time — the old scalar-only check silently accepted
    out-of-range values hidden inside sequences or mappings."""
    for bad in (-0.1, 1.5, [0.2, 1.5], {0: -0.1}, {0: [0.3, 2.0]}):
        with pytest.raises(ValueError):
            FaultPlan(map_failures={0: 1}, progress_at_failure=bad)
    for ok in (0.0, 1.0, [0.0, 0.5, 1.0], {0: 0.3, 1: [0.1, 0.9]}):
        FaultPlan(map_failures={0: 1}, progress_at_failure=ok)


def test_progress_per_attempt_sequence():
    """A sequence is indexed by attempt; past its end, the last entry
    sticks (retries keep dying at the same point)."""
    plan = FaultPlan(progress_at_failure=[0.1, 0.6, 0.9])
    assert plan.progress_for(0, 0) == 0.1
    assert plan.progress_for(7, 1) == 0.6
    assert plan.progress_for(7, 2) == 0.9
    assert plan.progress_for(7, 5) == 0.9


def test_progress_per_task_mapping():
    """A mapping resolves per task key, each value a scalar or its own
    per-attempt sequence; unmapped tasks fall back to the 0.5 default."""
    plan = FaultPlan(progress_at_failure={2: 0.25, 4: [0.0, 1.0]})
    assert plan.progress_for(2, 0) == 0.25
    assert plan.progress_for(2, 3) == 0.25
    assert plan.progress_for(4, 0) == 0.0
    assert plan.progress_for(4, 1) == 1.0
    assert plan.progress_for(9, 0) == 0.5


def test_per_failure_progress_controls_wasted_time(inputs):
    """Two failures at [0.0, then ~full] progress waste strictly more than
    two instant deaths — the wasted-work accounting sees each failure's
    own progress, not one global scalar."""
    cheap = FaultInjector(fail_counts={0: 2}, progress_at_failure=[0.0, 0.0])
    dear = FaultInjector(fail_counts={0: 2}, progress_at_failure=[0.0, 0.9])
    run(inputs, faults=cheap)
    run(inputs, faults=dear)
    assert dear.wasted_seconds > cheap.wasted_seconds
    assert cheap.wasted_seconds < 1e-3


def test_fault_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(reduce_failures={1: -2})
    with pytest.raises(ValueError):
        FaultPlan(stragglers={0: 0.5})    # slowdown must be >= 1
    with pytest.raises(ValueError):
        FaultPlan(node_crashes=(NodeCrash(1, 0.1), NodeCrash(1, 0.2)))
    with pytest.raises(ValueError):
        NodeCrash(node=-1, at=0.0)
    with pytest.raises(ValueError):
        NodeCrash(node=0, at=-1.0)
