"""Tests for task-failure injection and re-execution (§III-E extension)."""

import pytest

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.baselines.reference import run_reference
from repro.core import JobConfig, run_glasswing
from repro.core.faults import FaultInjector
from repro.hw.presets import das4_cluster

from tests.conftest import assert_outputs_match

CHUNK = 65_536


@pytest.fixture(scope="module")
def inputs():
    return {"wiki": wiki_text(400_000, seed=51)}


def run(inputs, faults=None, **cfg):
    return run_glasswing(WordCountApp(), inputs, das4_cluster(nodes=2),
                         JobConfig(chunk_size=CHUNK, **cfg), faults=faults)


def test_injector_validation():
    with pytest.raises(ValueError):
        FaultInjector(progress_at_failure=1.5)
    with pytest.raises(ValueError):
        FaultInjector(fail_counts={0: -1})


def test_injector_plan_semantics():
    inj = FaultInjector(fail_counts={3: 2})
    assert inj.should_fail(3, 0)
    assert inj.should_fail(3, 1)
    assert not inj.should_fail(3, 2)
    assert not inj.should_fail(0, 0)


def test_output_correct_despite_failures(inputs):
    ref = run_reference(WordCountApp(), inputs)
    faults = FaultInjector(fail_counts={0: 1, 2: 2, 5: 1})
    res = run(inputs, faults=faults)
    assert_outputs_match(res.output_pairs(), ref)
    assert faults.total_failures == 4


def test_failures_cost_time(inputs):
    clean = run(inputs)
    faults = FaultInjector(fail_counts={i: 1 for i in range(6)})
    failed = run(inputs, faults=faults)
    assert failed.job_time > clean.job_time
    assert faults.wasted_seconds > 0


def test_failures_recorded_in_timeline(inputs):
    faults = FaultInjector(fail_counts={1: 3})
    res = run(inputs, faults=faults)
    spans = res.timeline.by_category("map.task_failure")
    assert len(spans) == 3
    assert all(s.meta["split"] == 1 for s in spans)
    assert [s.meta["attempt"] for s in spans] == [0, 1, 2]


def test_failure_free_plan_is_noop(inputs):
    clean = run(inputs)
    with_empty = run(inputs, faults=FaultInjector())
    assert with_empty.job_time == pytest.approx(clean.job_time)


def test_zero_progress_failures_waste_nothing(inputs):
    faults = FaultInjector(fail_counts={0: 1}, progress_at_failure=0.0)
    run(inputs, faults=faults)
    # A task that dies instantly wastes (almost) no kernel time.
    assert faults.wasted_seconds < 1e-3
