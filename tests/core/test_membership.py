"""Unit tests for the elastic-membership primitives: the four-state
:class:`ClusterHealth` machine, the membership fault dataclasses, the
replicated :class:`CoordinatorGroup`, the pinned partition space of
``ShuffleRegistry(nodes=...)`` and the service layer's
:class:`ElasticPool` ledger.  End-to-end output invariance lives in
tests/core/test_chaos_matrix.py and test_chaos_properties.py.
"""

import pytest

from repro.core.coordinator import ShuffleRegistry
from repro.core.faults import (ClusterHealth, CoordinatorCrash, FaultPlan,
                               NodeJoin, NodeLeave)
from repro.core.membership import (CoordinatorGroup, ElasticPolicy,
                                   ElasticPool)
from repro.simt.core import Simulator


# ---------------------------------------------------------------------------
# ClusterHealth: active / standby / departed / dead
# ---------------------------------------------------------------------------

class TestClusterHealth:
    def test_default_activates_everyone(self):
        h = ClusterHealth(4)
        assert h.inactive == set()
        assert h.alive_nodes == [0, 1, 2, 3]
        assert all(h.storage_alive(n) for n in range(4))
        assert not h.needs_recovery

    def test_restricted_active_set(self):
        h = ClusterHealth(4, active=[0, 2])
        assert h.inactive == {1, 3}
        assert h.alive_nodes == [0, 2]
        # Standbys neither take work nor serve bytes.
        assert not h.alive(1) and not h.storage_alive(1)

    def test_activate_moves_standby_to_active(self):
        h = ClusterHealth(4, active=[0, 1])
        h.activate(2, at=1.5)
        assert h.alive(2) and h.storage_alive(2)
        assert h.joined_at == {2: 1.5}
        assert h.inactive == {3}

    def test_activate_rejects_non_standby(self):
        h = ClusterHealth(4, active=[0, 1])
        with pytest.raises(ValueError):
            h.activate(0, at=0.0)
        with pytest.raises(ValueError):
            h.activate(7, at=0.0)

    def test_departed_is_storage_alive_but_not_alive(self):
        h = ClusterHealth(4)
        h.mark_departed(3, at=2.0)
        assert not h.alive(3)
        assert h.storage_alive(3)        # durable spill stays readable
        assert h.departed_nodes == [3]
        assert h.needs_recovery and not h.any_dead

    def test_dead_is_neither(self):
        h = ClusterHealth(4)
        h.mark_dead(2, at=1.0)
        assert not h.alive(2) and not h.storage_alive(2)
        assert h.any_dead and h.needs_recovery

    def test_standby_cannot_depart(self):
        h = ClusterHealth(4, active=[0, 1])
        with pytest.raises(ValueError):
            h.mark_departed(3, at=0.0)

    def test_gone_nodes_unions_dead_and_departed(self):
        h = ClusterHealth(4)
        h.mark_dead(1, at=1.0)
        h.mark_departed(3, at=2.0)
        assert h.gone_nodes == [1, 3]
        assert h.alive_nodes == [0, 2]

    def test_invalid_active_ids_raise(self):
        with pytest.raises(ValueError):
            ClusterHealth(4, active=[])
        with pytest.raises(ValueError):
            ClusterHealth(4, active=[0, 4])


# ---------------------------------------------------------------------------
# Fault dataclasses and FaultPlan integration
# ---------------------------------------------------------------------------

class TestMembershipFaults:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            NodeJoin(-1, 0.1)
        with pytest.raises(ValueError):
            NodeJoin(0, -0.1)
        with pytest.raises(ValueError):
            NodeLeave(-2, 0.1)
        with pytest.raises(ValueError):
            CoordinatorCrash(-1.0)
        # node=None (auto-resolve) is always legal
        NodeJoin(None, 0.0)
        NodeLeave(None, 0.0)

    def test_plan_rejects_duplicate_explicit_nodes(self):
        with pytest.raises(ValueError):
            FaultPlan(node_joins=(NodeJoin(4, 0.1), NodeJoin(4, 0.2)))
        with pytest.raises(ValueError):
            FaultPlan(node_leaves=(NodeLeave(2, 0.1), NodeLeave(2, 0.2)))
        # Two auto-resolved events are fine — they pick distinct nodes
        # at fire time.
        FaultPlan(node_joins=(NodeJoin(None, 0.1), NodeJoin(None, 0.2)))

    def test_has_membership_events(self):
        assert not FaultPlan().has_membership_events
        assert FaultPlan(node_joins=(NodeJoin(None, 0.1),)).has_membership_events
        assert FaultPlan(node_leaves=(NodeLeave(None, 0.1),)).has_membership_events
        assert FaultPlan(
            coordinator_crashes=(CoordinatorCrash(0.1),)).has_membership_events

    def test_seeded_membership_draws_do_not_shift_classic_schedule(self):
        """The membership draws are appended after the classic ones, so
        requesting churn must leave the seed's crash/straggler schedule
        byte-identical (back-compat for committed seeds)."""
        kwargs = dict(n_splits=32, n_nodes=4, n_partitions=8,
                      map_rate=0.3, reduce_rate=0.2, straggler_rate=0.3,
                      node_crash_count=1)
        classic = FaultPlan.seeded(99, **kwargs)
        churned = FaultPlan.seeded(99, node_join_count=2,
                                   node_leave_count=1,
                                   coordinator_crash_count=1, **kwargs)
        assert churned.map_failures == classic.map_failures
        assert churned.reduce_failures == classic.reduce_failures
        assert churned.stragglers == classic.stragglers
        assert churned.node_crashes == classic.node_crashes
        assert churned.progress_at_failure == classic.progress_at_failure
        assert len(churned.node_joins) == 2
        assert len(churned.node_leaves) == 1
        assert len(churned.coordinator_crashes) == 1
        assert all(e.node is None for e in churned.node_joins)

    def test_seeded_membership_is_reproducible(self):
        a = FaultPlan.seeded(7, n_splits=8, node_join_count=3,
                             node_leave_count=2, coordinator_crash_count=1,
                             membership_window=(0.1, 0.9))
        b = FaultPlan.seeded(7, n_splits=8, node_join_count=3,
                             node_leave_count=2, coordinator_crash_count=1,
                             membership_window=(0.1, 0.9))
        assert a.node_joins == b.node_joins
        assert a.node_leaves == b.node_leaves
        assert a.coordinator_crashes == b.coordinator_crashes
        assert all(0.1 <= e.at <= 0.9 for e in a.node_joins + a.node_leaves)


# ---------------------------------------------------------------------------
# CoordinatorGroup: deterministic leader election
# ---------------------------------------------------------------------------

def _drive(gen):
    """Run one driver generator to completion on a fresh simulator."""
    sim = Simulator()
    sim.process(gen(sim), name="driver")
    sim.run()
    return sim


class TestCoordinatorGroup:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CoordinatorGroup(sim, replicas=0)
        with pytest.raises(ValueError):
            CoordinatorGroup(sim, failover_timeout=-1.0)

    def test_healthy_leader_barrier_is_free(self):
        seen = []

        def driver(sim):
            group = CoordinatorGroup(sim, replicas=3, failover_timeout=0.5)
            leader = yield from group.require_leader()
            seen.append((sim.now, leader, group.failovers, group.epoch))
            yield sim.timeout(0)    # keep the generator a generator

        _drive(driver)
        assert seen == [(0.0, 0, 0, 0)]

    def test_concurrent_waiters_share_one_election(self):
        """N barriers queued behind one crash charge the failover delay
        exactly once and all see the same new leader."""
        seen = []

        def waiter(sim, group):
            leader = yield from group.require_leader()
            seen.append((sim.now, leader))

        def driver(sim):
            group = CoordinatorGroup(sim, replicas=3, failover_timeout=0.25)
            yield sim.timeout(1.0)
            assert group.crash_leader() == 0
            for _ in range(3):
                sim.process(waiter(sim, group))
            yield sim.timeout(1.0)
            assert group.failovers == 1
            assert group.epoch == 1
            assert group.alive_replicas() == [1, 2]

        _drive(driver)
        assert seen == [(1.25, 1)] * 3

    def test_crash_mid_election_kills_would_be_winner(self):
        """A second crash landing inside the election window removes the
        replica that was about to win; the election still completes in
        one delay and installs the next survivor."""
        seen = []

        def waiter(sim, group):
            leader = yield from group.require_leader()
            seen.append((sim.now, leader))

        def driver(sim):
            group = CoordinatorGroup(sim, replicas=3, failover_timeout=0.2)
            yield sim.timeout(1.0)
            group.crash_leader()              # kills 0
            sim.process(waiter(sim, group))
            yield sim.timeout(0.1)            # mid-election
            assert group.crash_leader() == 1  # kills the would-be winner
            yield sim.timeout(1.0)
            assert group.leader == 2
            assert group.failovers == 1       # still one charge

        _drive(driver)
        assert seen == [(1.2, 2)]

    def test_all_replicas_dead_raises(self):
        errors = []

        def driver(sim):
            group = CoordinatorGroup(sim, replicas=1, failover_timeout=0.1)
            group.crash_leader()
            try:
                yield from group.require_leader()
            except RuntimeError as exc:
                errors.append(str(exc))

        _drive(driver)
        assert len(errors) == 1
        assert "every coordinator replica is dead" in errors[0]

    def test_crash_with_no_survivors_returns_none(self):
        sim = Simulator()
        group = CoordinatorGroup(sim, replicas=1)
        assert group.crash_leader() == 0
        assert group.crash_leader() is None


# ---------------------------------------------------------------------------
# ShuffleRegistry: the partition space is pinned to the initial actives
# ---------------------------------------------------------------------------

class TestPinnedPartitionSpace:
    def test_restricted_registry_matches_small_cluster(self):
        """An 8-node registry restricted to nodes 0..3 partitions the key
        space exactly like a 4-node cluster — the invariant that makes
        chaos output byte-identical to the static half-cluster run."""
        small = ShuffleRegistry(4, 2)
        restricted = ShuffleRegistry(8, 2, nodes=[0, 1, 2, 3])
        assert restricted.total_partitions == small.total_partitions == 8
        for pid in range(8):
            assert restricted.owner_of(pid) == small.owner_of(pid)

    def test_owners_cycle_over_the_active_set(self):
        reg = ShuffleRegistry(8, 1, nodes=[1, 5, 6])
        assert reg.total_partitions == 3
        assert [reg.owner_of(p) for p in range(3)] == [1, 5, 6]
        assert reg.owned_by(5) == [1]

    def test_invalid_nodes_raise(self):
        with pytest.raises(ValueError):
            ShuffleRegistry(4, 2, nodes=[])
        with pytest.raises(ValueError):
            ShuffleRegistry(4, 2, nodes=[0, 4])


# ---------------------------------------------------------------------------
# ElasticPolicy / ElasticPool
# ---------------------------------------------------------------------------

class TestElasticPolicy:
    def test_defaults_are_valid(self):
        ElasticPolicy()

    @pytest.mark.parametrize("kwargs", [
        dict(min_nodes=0),
        dict(min_nodes=4, max_nodes=2),
        dict(low_watermark=0.9, high_watermark=0.5),
        dict(high_watermark=1.5),
        dict(interval=0.0),
        dict(cooldown=-0.1),
    ])
    def test_invalid_policies_raise(self, kwargs):
        with pytest.raises(ValueError):
            ElasticPolicy(**kwargs)


class TestElasticPool:
    def test_default_pool_is_fully_active(self):
        pool = ElasticPool(4)
        assert pool.active == [0, 1, 2, 3] and pool.standby == []

    def test_count_and_sequence_forms(self):
        assert ElasticPool(8, active=3).active == [0, 1, 2]
        pool = ElasticPool(8, active=[6, 2, 2])
        assert pool.active == [2, 6]
        assert pool.standby == [0, 1, 3, 4, 5, 7]

    def test_validation(self):
        with pytest.raises(ValueError):
            ElasticPool(0)
        with pytest.raises(ValueError):
            ElasticPool(4, active=0)
        with pytest.raises(ValueError):
            ElasticPool(4, active=5)
        with pytest.raises(ValueError):
            ElasticPool(4, active=[0, 9])

    def test_scale_out_prefers_lowest_standby(self):
        pool = ElasticPool(6, active=[0, 1])
        assert pool.scale_out(at=1.0) == 2
        assert pool.scale_out(node=5, at=2.0) == 5
        assert pool.active == [0, 1, 2, 5]
        assert pool.events == [
            {"kind": "scale-out", "node": 2, "at": 1.0},
            {"kind": "scale-out", "node": 5, "at": 2.0},
        ]

    def test_scale_in_prefers_highest_active(self):
        pool = ElasticPool(4)
        assert pool.scale_in(at=1.0) == 3
        assert pool.scale_in(node=1, at=2.0) == 1
        assert pool.active == [0, 2]
        assert pool.standby == [1, 3]

    def test_pool_never_drains_its_last_node(self):
        pool = ElasticPool(3, active=1)
        assert pool.scale_in() is None
        assert pool.active == [0]

    def test_noop_events_are_not_recorded(self):
        pool = ElasticPool(2)
        assert pool.scale_out() is None          # nothing on standby
        assert pool.scale_in(node=7) is None     # not active
        assert pool.events == []

    def test_round_trip_is_deterministic(self):
        a, b = ElasticPool(8, active=4), ElasticPool(8, active=4)
        for pool in (a, b):
            pool.scale_out(at=0.1)
            pool.scale_in(at=0.2)
            pool.scale_out(at=0.3)
        assert a.active == b.active
        assert a.standby == b.standby
        assert a.events == b.events
