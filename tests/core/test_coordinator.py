"""Tests for input splitting and affinity-aware assignment."""

import pytest

from repro.core.coordinator import Split, assign_splits, make_splits
from repro.core.io import make_backend
from repro.hw import Cluster
from repro.hw.presets import das4_cluster
from repro.simt import Simulator


def make_dfs_backend(nodes=4, block_size=1000):
    sim = Simulator()
    cluster = Cluster(sim, das4_cluster(nodes=nodes))
    backend = make_backend("dfs", cluster, block_size=block_size,
                           replication=2)
    return sim, cluster, backend


def test_make_splits_covers_file():
    sim, cluster, backend = make_dfs_backend()
    backend.install("f", b"x" * 3500)
    splits = make_splits(backend, ["f"], chunk_size=1000)
    assert [s.length for s in splits] == [1000, 1000, 1000, 500]
    assert [s.offset for s in splits] == [0, 1000, 2000, 3000]
    assert all(s.path == "f" for s in splits)
    assert [s.index for s in splits] == [0, 1, 2, 3]


def test_make_splits_multiple_files():
    sim, cluster, backend = make_dfs_backend()
    backend.install("a", b"x" * 1500)
    backend.install("b", b"y" * 800)
    splits = make_splits(backend, ["a", "b"], chunk_size=1000)
    assert len(splits) == 3
    assert splits[2].path == "b"
    assert [s.index for s in splits] == [0, 1, 2]


def test_record_alignment():
    sim, cluster, backend = make_dfs_backend()
    backend.install("f", b"z" * 1000)
    splits = make_splits(backend, ["f"], chunk_size=350, record_size=100)
    # 350 -> 300 (aligned down to record multiple)
    assert all(s.offset % 100 == 0 for s in splits)
    assert sum(s.length for s in splits) == 1000


def test_record_larger_than_chunk_rejected():
    sim, cluster, backend = make_dfs_backend()
    backend.install("f", b"z" * 1000)
    with pytest.raises(ValueError):
        make_splits(backend, ["f"], chunk_size=50, record_size=100)


def test_affinity_assignment_prefers_replica_holders():
    sim, cluster, backend = make_dfs_backend(nodes=4, block_size=1000)
    backend.install("f", b"x" * 8000)
    splits = make_splits(backend, ["f"], chunk_size=1000)
    assignment = assign_splits(splits, backend, 4)
    locs = backend.locations("f")
    for node_id, assigned in assignment.items():
        for split in assigned:
            holders = next(l.replicas for l in locs
                           if l.offset <= split.offset < l.offset + l.length)
            assert node_id in holders


def test_assignment_balances_load():
    sim, cluster, backend = make_dfs_backend(nodes=4, block_size=1000)
    backend.install("f", b"x" * 16000)
    splits = make_splits(backend, ["f"], chunk_size=1000)
    assignment = assign_splits(splits, backend, 4)
    sizes = [len(v) for v in assignment.values()]
    assert max(sizes) - min(sizes) <= 2


def test_round_robin_without_locality():
    sim, cluster, _ = make_dfs_backend(nodes=3)
    local = make_backend("local", cluster)
    local.install("f", b"x" * 9000)
    splits = make_splits(local, ["f"], chunk_size=1000)
    assignment = assign_splits(splits, local, 3)
    assert [len(v) for v in assignment.values()] == [3, 3, 3]


def test_every_split_assigned_exactly_once():
    sim, cluster, backend = make_dfs_backend(nodes=4)
    backend.install("f", b"x" * 12345)
    splits = make_splits(backend, ["f"], chunk_size=777)
    assignment = assign_splits(splits, backend, 4)
    seen = sorted(s.index for v in assignment.values() for s in v)
    assert seen == [s.index for s in splits]


def test_chunk_size_validation():
    sim, cluster, backend = make_dfs_backend()
    backend.install("f", b"x")
    with pytest.raises(ValueError):
        make_splits(backend, ["f"], chunk_size=0)
