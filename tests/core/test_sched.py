"""Unit tests for the pluggable scheduling layer (repro.core.sched).

Covers the policy registry, each policy's placement order, the
deterministic tie-breaking of the affinity assignment (invariant under
replica-list permutation), the fault-tolerance hooks (rehome /
pick_helper) and the heterogeneous device-pool gate.
"""

import pytest

from repro.core.coordinator import Split, make_splits
from repro.core.io import make_backend
from repro.core.sched import (SCHEDULER_NAMES, DynamicLocalityScheduler,
                              OpLevelScheduler, Scheduler,
                              StaticAffinityScheduler, affinity_assign,
                              holders_by_split, make_scheduler)
from repro.hw import Cluster
from repro.hw.presets import das4_cluster
from repro.simt import Simulator
from repro.storage.dfs import BlockLocation


class StubBackend:
    """Backend exposing only the location map the scheduler reads."""

    def __init__(self, locmap):
        self.locmap = locmap

    def locations(self, path):
        return self.locmap.get(path)


def one_block_splits(spec):
    """``[(length, holders), ...]`` -> one single-block file per split."""
    splits, locmap = [], {}
    for i, (length, holders) in enumerate(spec):
        path = f"f{i}"
        splits.append(Split(index=i, path=path, offset=0, length=length))
        if holders is not None:
            locmap[path] = [BlockLocation(0, length, tuple(holders))]
    return splits, StubBackend(locmap)


def make_dfs_backend(nodes=4, block_size=1000):
    sim = Simulator()
    cluster = Cluster(sim, das4_cluster(nodes=nodes))
    backend = make_backend("dfs", cluster, block_size=block_size,
                           replication=2)
    return sim, cluster, backend


def drain(sched, node_id, phase="map"):
    """All splits ``node_id`` pulls until the policy says stop."""
    out = []
    while True:
        split = sched.next_for(node_id, phase)
        if split is None:
            return out
        out.append(split)


# -- registry --------------------------------------------------------------

def test_registry_names_and_classes():
    assert SCHEDULER_NAMES == ("static-affinity", "dynamic-locality",
                               "oplevel")
    classes = {"static-affinity": StaticAffinityScheduler,
               "dynamic-locality": DynamicLocalityScheduler,
               "oplevel": OpLevelScheduler}
    for name, cls in classes.items():
        sched = make_scheduler(name)
        assert type(sched) is cls
        assert sched.name == name


def test_registry_rejects_unknown_policy():
    with pytest.raises(ValueError, match="unknown scheduler"):
        make_scheduler("fifo")


# -- static policy: the extracted pre-refactor behaviour -------------------

def test_static_pull_order_equals_affinity_assignment():
    sim, cluster, backend = make_dfs_backend(nodes=4)
    backend.install("f", b"x" * 12000)
    splits = make_splits(backend, ["f"], chunk_size=1000)
    assignment = affinity_assign(splits, backend, 4)
    sched = make_scheduler("static-affinity")
    sched.plan(splits, backend, 4)
    for node_id, expected in assignment.items():
        assert drain(sched, node_id) == expected
    assert sched.queue_depth() == 0
    assert all(drain(sched, n) == [] for n in range(4))


def test_static_does_not_steal():
    """A node with an empty queue gets nothing even when others have
    backlog — the defining difference from the dynamic policies."""
    splits, backend = one_block_splits([(100, (0,)), (100, (0,))])
    sched = make_scheduler("static-affinity")
    sched.plan(splits, backend, 2)
    assert sched.next_for(1) is None
    assert drain(sched, 0) == splits


# -- deterministic tie-breaking (replica-permutation regression) -----------

def test_affinity_invariant_under_replica_permutation():
    """Equally loaded replica holders tie-break on node id, so permuting
    every replica list leaves the assignment bit-identical."""
    lengths = [100] * 9
    holder_sets = [(0, 1, 2), (2, 1, 0), (1, 2, 0),
                   (0, 2), (2, 0), (1, 0),
                   (2, 1), (0, 1), (1, 2)]
    splits, _ = one_block_splits([(n, h) for n, h
                                  in zip(lengths, holder_sets)])
    baseline = None
    for rotation in range(3):
        locmap = {}
        for i, holders in enumerate(holder_sets):
            perm = tuple(holders[rotation % len(holders):]
                         + holders[:rotation % len(holders)])
            locmap[f"f{i}"] = [BlockLocation(0, lengths[i], perm)]
        assignment = affinity_assign(splits, StubBackend(locmap), 3)
        shape = {n: [s.index for s in q] for n, q in assignment.items()}
        if baseline is None:
            baseline = shape
        assert shape == baseline


def test_holders_by_split_omits_unknown():
    splits, backend = one_block_splits([(10, (0,)), (10, None)])
    holders = holders_by_split(splits, backend)
    assert holders == {0: frozenset({0})}


# -- dynamic policy --------------------------------------------------------

DYN_SPEC = [(100, (0,)), (300, (0,)), (200, (1,)), (50, (0, 1))]


def test_dynamic_prefers_local_then_steals_oldest():
    splits, backend = one_block_splits(DYN_SPEC)
    sched = make_scheduler("dynamic-locality")
    sched.plan(splits, backend, 2)
    # node 1's locals are s2 and s3; drained, it steals the *oldest*
    # remote split (s0), then s1.
    assert [s.index for s in drain(sched, 1)] == [2, 3, 0, 1]
    assert sched.locality_hits == 2 and sched.locality_misses == 2


def test_dynamic_interleaved_pull_is_all_local():
    splits, backend = one_block_splits(DYN_SPEC)
    sched = make_scheduler("dynamic-locality")
    sched.plan(splits, backend, 2)
    order = [sched.next_for(0).index, sched.next_for(1).index,
             sched.next_for(1).index, sched.next_for(0).index]
    assert order == [0, 2, 3, 1]
    assert sched.locality_misses == 0
    assert sched.locality_hit_rate == 1.0


# -- oplevel policy --------------------------------------------------------

def test_oplevel_hands_out_largest_local_first():
    splits, backend = one_block_splits(DYN_SPEC)
    sched = make_scheduler("oplevel")
    sched.plan(splits, backend, 2)
    assert sched.next_for(0).index == 1          # 300 is 0's largest local
    assert sched.next_for(1).index == 2          # 200 is 1's largest local
    assert sched.next_for(1).index == 3          # local 50 beats remote 100
    assert sched.next_for(1).index == 0          # steal the remainder
    assert sched.next_for(0) is None


def test_oplevel_steals_largest_remote():
    splits, backend = one_block_splits([(10, (0,)), (500, (0,)),
                                        (90, (0,))])
    sched = make_scheduler("oplevel")
    sched.plan(splits, backend, 2)
    assert sched.next_for(1).index == 1          # largest anywhere


def test_oplevel_equal_lengths_break_ties_on_lowest_index():
    splits, backend = one_block_splits([(100, (0,)), (100, (0,)),
                                        (100, (0,))])
    sched = make_scheduler("oplevel")
    sched.plan(splits, backend, 2)
    assert [s.index for s in drain(sched, 0)] == [0, 1, 2]


# -- fault-tolerance hooks -------------------------------------------------

class StubRegistry:
    def __init__(self, owned):
        self._owned = owned

    def owned_by(self, node_id):
        return self._owned.get(node_id, [])


def test_base_rehome_is_the_deterministic_spread():
    sched = Scheduler()
    assert [sched.rehome(pid, [0, 2, 3]) for pid in range(6)] == \
        [0, 2, 3, 0, 2, 3]


def test_dynamic_rehome_picks_least_loaded_owner():
    sched = make_scheduler("dynamic-locality")
    registry = StubRegistry({0: [1, 2, 3], 2: [4], 3: [5, 6]})
    assert sched.rehome(9, [0, 2, 3], registry) == 2
    # without a registry it falls back to the deterministic spread
    assert sched.rehome(9, [0, 2, 3]) == 0


def test_pick_helper_least_loaded_with_locality_preferences():
    active = {0: 0, 1: 2, 2: 1}
    base = Scheduler()
    assert base.pick_helper(0, [0, 1, 2], active) == 2
    assert base.pick_helper(0, [0], active) is None

    splits, backend = one_block_splits([(10, (1,))])
    dyn = make_scheduler("dynamic-locality")
    dyn.plan(splits, backend, 3)
    # locality first: the busy holder still wins under dynamic-locality…
    assert dyn.pick_helper(0, [0, 1, 2], active, split_index=0) == 1
    op = make_scheduler("oplevel")
    op.plan(splits, backend, 3)
    # …but oplevel puts global balance first.
    assert op.pick_helper(0, [0, 1, 2], active, split_index=0) == 2
    assert dyn.speculative_placements == 1
    assert op.stats()["speculative_placements"] == 1


def test_recovery_plan_targets_survivors_only():
    splits, backend = one_block_splits([(100, (0,)), (100, (1,)),
                                        (100, (2,))])
    for name in SCHEDULER_NAMES:
        sched = make_scheduler(name)
        sched.plan([], backend, 3)
        sched.plan_recovery(splits, backend, survivors=[0, 2])
        nodes = sched.recovery_nodes()
        assert nodes and set(nodes) <= {0, 2}
        pulled = [s for n in nodes for s in drain(sched, n, "recovery")]
        assert sorted(s.index for s in pulled) == [0, 1, 2]


# -- heterogeneous device-pool gate ---------------------------------------

def run_gate(gen):
    """Drive a pool_acquire generator that must not need to wait."""
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("pool gate yielded with no contention")


def pool_sched(n_splits, length=100):
    splits, backend = one_block_splits([(length, (0,))] * n_splits)
    sched = make_scheduler("static-affinity", sim=Simulator())
    sched.plan(splits, backend, 1)
    sched.register_device(0, "gpu", speed=20.0)
    sched.register_device(0, "cpu", speed=1.0)
    return sched


def test_pool_fastest_device_pulls_freely():
    sched = pool_sched(3)
    got = [run_gate(sched.pool_acquire(0, "gpu")) for _ in range(4)]
    assert [s.index for s in got[:3]] == [0, 1, 2]
    assert got[3] is None


def test_pool_slow_device_retires_on_small_backlog():
    # One op on the 20x-slower CPU (100/1 = 100) outlasts the pool
    # draining the whole 10-split backlog (1000/20 = 50): bow out.
    sched = pool_sched(10)
    assert run_gate(sched.pool_acquire(0, "cpu")) is None
    assert sched.queue_depth() == 10        # nothing consumed


def test_pool_slow_device_contributes_on_large_backlog():
    # 30 splits: 100/1 < 3000/20, so the CPU takes exactly one op and
    # its pipeline stays capped at one in flight until it completes.
    sched = pool_sched(30)
    split = run_gate(sched.pool_acquire(0, "cpu"))
    assert split is not None
    gen = sched.pool_acquire(0, "cpu")
    next(gen)                               # blocks: one op in flight
    sched.note_done(0, "cpu", float(split.length))
    with pytest.raises(StopIteration) as stop:
        gen.send(None)                      # woken; re-evaluates the gate
    follow_up = stop.value.value
    assert follow_up is not None and follow_up.index != split.index


def test_pool_placements_are_tagged_with_device():
    from repro.simt.trace import Timeline
    sim = Simulator()
    timeline = Timeline()
    splits, backend = one_block_splits([(100, (0,))] * 25)
    sched = make_scheduler("static-affinity", sim=sim, timeline=timeline)
    sched.plan(splits, backend, 1)
    sched.register_device(0, "gpu", speed=20.0)
    run_gate(sched.pool_acquire(0, "gpu"))
    spans = [s for s in timeline.spans if s.category == "sched.place"]
    assert len(spans) == 1
    assert spans[0].meta["device"] == "gpu"
    assert spans[0].meta["policy"] == "static-affinity"
    assert spans[0].meta["local"] is True
