"""Engine edge cases: degenerate inputs, extreme configs, invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.baselines.reference import canonical_output, run_reference
from repro.core import JobConfig, run_glasswing
from repro.core.api import stable_hash
from repro.hw.presets import das4_cluster

from tests.conftest import assert_outputs_match


def test_empty_input_file():
    res = run_glasswing(WordCountApp(), {"empty": b""},
                        das4_cluster(nodes=2), JobConfig(chunk_size=1024))
    assert list(res.output_pairs()) == []
    assert res.job_time >= 0.0


def test_single_record_input():
    res = run_glasswing(WordCountApp(), {"one": b"hello world hello\n"},
                        das4_cluster(nodes=3), JobConfig(chunk_size=1024))
    assert sorted(res.output_pairs()) == [(b"hello", 2), (b"world", 1)]


def test_input_smaller_than_chunk():
    data = wiki_text(5_000, seed=61)
    res = run_glasswing(WordCountApp(), {"tiny": data},
                        das4_cluster(nodes=1),
                        JobConfig(chunk_size=1 << 20))
    assert_outputs_match(res.output_pairs(),
                         run_reference(WordCountApp(), {"tiny": data}))
    assert res.stats["splits"] == 1


def test_more_nodes_than_chunks():
    data = wiki_text(20_000, seed=62)
    res = run_glasswing(WordCountApp(), {"f": data}, das4_cluster(nodes=8),
                        JobConfig(chunk_size=16_384))
    assert_outputs_match(res.output_pairs(),
                         run_reference(WordCountApp(), {"f": data}))


def test_multiple_input_files():
    files = {f"f{i}": wiki_text(30_000, seed=63 + i) for i in range(3)}
    res = run_glasswing(WordCountApp(), files, das4_cluster(nodes=2),
                        JobConfig(chunk_size=16_384))
    assert_outputs_match(res.output_pairs(),
                         run_reference(WordCountApp(), files))


def test_whitespace_only_input():
    res = run_glasswing(WordCountApp(), {"blank": b"   \n \n  \n"},
                        das4_cluster(nodes=2), JobConfig(chunk_size=4))
    assert list(res.output_pairs()) == []


def test_extreme_partition_counts():
    data = wiki_text(50_000, seed=64)
    ref = run_reference(WordCountApp(), {"f": data})
    for P in (1, 64):
        res = run_glasswing(WordCountApp(), {"f": data},
                            das4_cluster(nodes=2),
                            JobConfig(chunk_size=16_384,
                                      partitions_per_node=P))
        assert_outputs_match(res.output_pairs(), ref)


def test_result_times_are_consistent():
    data = wiki_text(100_000, seed=65)
    res = run_glasswing(WordCountApp(), {"f": data}, das4_cluster(nodes=2),
                        JobConfig(chunk_size=16_384))
    assert res.job_time == pytest.approx(
        res.map_time + res.merge_delay + res.reduce_time, rel=1e-6)
    assert res.map_time > 0
    assert res.reduce_time > 0


def test_stable_hash_is_deterministic_across_types():
    assert stable_hash(b"abc") == stable_hash("abc")
    assert stable_hash((1, 2)) == stable_hash((1, 2))
    assert stable_hash(b"abc") != stable_hash(b"abd")


@settings(max_examples=30, deadline=None)
@given(st.one_of(st.binary(max_size=30), st.text(max_size=30),
                 st.integers(), st.tuples(st.integers(), st.integers())))
def test_stable_hash_partitions_in_range(key):
    for n in (1, 7, 64):
        assert 0 <= stable_hash(key) % n < n
