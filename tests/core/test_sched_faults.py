"""Fault tolerance under every scheduling policy.

The fault matrix proper (tests/core/test_fault_matrix.py) runs under
the default policy; these cells re-run the headline guarantees — node
crash + recovery, task retries, stragglers + speculation — with the
placement policy swapped out, because recovery re-homing, re-execution
and speculative helper choice are all scheduler decisions now.
"""

import pytest

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.core import JobConfig, run_glasswing
from repro.core.faults import FaultPlan, NodeCrash
from repro.core.sched import SCHEDULER_NAMES
from repro.hw.presets import das4_cluster

NODES = 4
POLICIES = sorted(SCHEDULER_NAMES)


def run_wc(scheduler, faults=None, **extra):
    cfg = JobConfig(chunk_size=65_536, input_replication=NODES,
                    scheduler=scheduler, **extra)
    return run_glasswing(WordCountApp(),
                         {"wiki": wiki_text(300_000, seed=81)},
                         das4_cluster(nodes=NODES), cfg, faults=faults)


def canonical(result):
    return sorted(result.output_pairs(), key=repr)


@pytest.fixture(scope="module", params=POLICIES)
def golden(request):
    """(policy, fault-free result) — the per-policy reference output."""
    return request.param, run_wc(request.param)


def test_map_crash_retries(golden):
    policy, ref = golden
    res = run_wc(policy, faults=FaultPlan(map_failures={0: 1, 1: 1}))
    assert canonical(res) == canonical(ref)
    assert res.stats["leaked_buffer_slots"] == 0
    assert res.metrics.reexecutions == 2
    assert res.stats["scheduler"] == policy


def test_reduce_crash_retries(golden):
    policy, ref = golden
    occupied = [pid for pid in sorted(ref.output) if ref.output[pid]]
    res = run_wc(policy,
                 faults=FaultPlan(reduce_failures={occupied[0]: 1}))
    assert canonical(res) == canonical(ref)
    assert res.stats["leaked_buffer_slots"] == 0
    assert res.metrics.reexecutions == 1


@pytest.mark.parametrize("count", (1, 3))
def test_node_crashes_recover(golden, count):
    policy, ref = golden
    crashes = tuple(NodeCrash(node=i + 1, at=ref.map_time * (0.3 + 0.2 * i))
                    for i in range(count))
    res = run_wc(policy, faults=FaultPlan(node_crashes=crashes))
    assert canonical(res) == canonical(ref)
    assert res.stats["leaked_buffer_slots"] == 0
    assert sorted(res.stats["dead_nodes"]) == [c.node for c in crashes]
    assert res.metrics.node_crashes == count
    assert res.job_time > ref.job_time


def test_stragglers_with_speculation(golden):
    policy, ref = golden
    res = run_wc(policy, faults=FaultPlan(stragglers={0: 6.0, 1: 6.0}),
                 speculative_execution=True)
    assert canonical(res) == canonical(ref)
    assert res.stats["leaked_buffer_slots"] == 0
    assert res.metrics.reexecutions == 0
    assert res.metrics.speculative_wins <= res.metrics.speculative_launches
    # helper choice is a policy hook — any launch must have been placed
    # through it (the counter lives in the scheduler stats)
    if res.metrics.speculative_launches:
        assert res.stats["sched_speculative_placements"] >= \
            res.metrics.speculative_launches


def test_crash_during_recovery_window_all_policies():
    """Two staggered crashes: the second lands while the first recovery
    may still be in flight — every policy must still converge."""
    for policy in POLICIES:
        ref = run_wc(policy)
        plan = FaultPlan(node_crashes=(
            NodeCrash(node=1, at=ref.map_time * 0.4),
            NodeCrash(node=3, at=ref.map_time * 0.45)))
        res = run_wc(policy, faults=plan)
        assert canonical(res) == canonical(ref), policy
        assert res.stats["leaked_buffer_slots"] == 0
        assert sorted(res.stats["dead_nodes"]) == [1, 3]
