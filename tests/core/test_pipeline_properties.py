"""Property-based tests of pipeline invariants under random timings."""

from hypothesis import given, settings, strategies as st

from repro.core.pipeline import Pipeline
from repro.simt import Simulator, Timeline


def run_random_pipeline(durations, buffering):
    """Pipeline whose per-item stage durations are given; returns facts."""
    sim = Simulator()
    tl = Timeline()

    def stage(kind):
        def fn(payload):
            idx = payload if isinstance(payload, int) else payload
            yield sim.timeout(durations[idx][kind])
            return idx
        return fn

    pipe = Pipeline(sim, tl, name="p", instance="n", buffering=buffering,
                    items=list(range(len(durations))),
                    read_fn=stage(0), kernel_fn=stage(1),
                    output_fn=stage(2))
    pipe.run()
    sim.run()
    return sim, tl, pipe


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.floats(0.01, 2.0), st.floats(0.01, 2.0),
                          st.floats(0.01, 2.0)),
                min_size=1, max_size=10),
       st.integers(min_value=1, max_value=3))
def test_pipeline_invariants(durations, buffering):
    sim, tl, pipe = run_random_pipeline(durations, buffering)

    # 1. All items delivered, in order.
    assert pipe.outputs == list(range(len(durations)))

    # 2. Elapsed is bounded below by every single stage's total and by
    #    the per-item critical path, and above by full serialisation.
    reads = sum(d[0] for d in durations)
    kernels = sum(d[1] for d in durations)
    outputs = sum(d[2] for d in durations)
    total = reads + kernels + outputs
    longest_item = max(sum(d) for d in durations)
    assert pipe.elapsed >= max(kernels, longest_item) - 1e-9
    assert pipe.elapsed <= total + 1e-9

    # 3. Higher buffering can only help (monotone non-increasing).
    if buffering < 3:
        _, _, wider = run_random_pipeline(durations, buffering + 1)
        assert wider.elapsed <= pipe.elapsed + 1e-9

    # 4. Kernel spans never overlap each other (one kernel stage).
    spans = sorted(tl.by_category("p.kernel"), key=lambda s: s.start)
    for a, b in zip(spans, spans[1:]):
        assert a.end <= b.start + 1e-9

    # 5. With single buffering, reads serialise against kernels.
    if buffering == 1:
        rspans = sorted(tl.by_category("p.input"), key=lambda s: s.start)
        kspans = sorted(tl.by_category("p.kernel"), key=lambda s: s.start)
        for r, k in zip(rspans[1:], kspans):
            assert r.start >= k.end - 1e-9
