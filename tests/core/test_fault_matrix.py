"""The fault matrix (§III-E): {wordcount, terasort, kmeans} ×
{map crash, reduce crash, node crash, straggler+speculation} × {1, 3}.

Every cell asserts the headline fault-tolerance guarantee — the job
output under the fault schedule equals the fault-free golden run — plus
the bookkeeping the plan implies (re-execution counts, dead nodes,
speculative wins).  Node-crash cells run on a 4-node cluster so three
crashes still leave a survivor.
"""

import pytest

from repro.apps import KMeansApp, TeraSortApp, WordCountApp
from repro.apps.datagen import kmeans_centers, kmeans_points, teragen, wiki_text
from repro.core import JobConfig, run_glasswing
from repro.core.faults import FaultPlan, NodeCrash
from repro.hw.presets import das4_cluster
from repro.storage.records import NO_COMPRESSION

from tests.conftest import assert_outputs_match

NODES = 4
SEVERITIES = (1, 3)
#: The matrix pins the static policy: its strict timing assertions
#: (a fault never speeds the job up) only hold when placement ignores
#: load.  Under the dynamic policies a retry legitimately perturbs the
#: runtime pull order into a slightly different — occasionally better —
#: schedule; those policies' fault guarantees live in
#: tests/core/test_sched_faults.py.
SCHEDULER = "static-affinity"


def canonical(result):
    """Order-insensitive exact form of a job's output."""
    return sorted(result.output_pairs(), key=repr)


class AppCase:
    """One application column of the matrix."""

    #: float reductions may reassociate when runs arrive in a different
    #: order, so those apps compare tolerantly instead of byte-exactly
    exact = True

    def run(self, faults=None, config=None):
        return run_glasswing(self.app(), self.inputs(),
                             das4_cluster(nodes=NODES),
                             config or self.config(), faults=faults)

    def assert_same_output(self, res, golden):
        if self.exact:
            assert canonical(res) == canonical(golden)
        else:
            assert_outputs_match(res.output_pairs(), golden.output_pairs())


class WordCount(AppCase):
    def app(self):
        return WordCountApp()

    def inputs(self):
        return {"wiki": wiki_text(300_000, seed=71)}

    def config(self):
        return JobConfig(chunk_size=65_536, input_replication=NODES,
                         scheduler=SCHEDULER)


class TeraSort(AppCase):
    DATA = teragen(2_000, seed=72)

    def app(self):
        return TeraSortApp.from_input(self.DATA)

    def inputs(self):
        return {"tera": self.DATA}

    def config(self):
        return JobConfig(chunk_size=20_000, output_replication=1,
                         compression=NO_COMPRESSION,
                         input_replication=NODES, scheduler=SCHEDULER)


class KMeans(AppCase):
    exact = False    # float-sum reduction: value order may reassociate

    def app(self):
        return KMeansApp(kmeans_centers(16, 4, seed=74))

    def inputs(self):
        return {"points": kmeans_points(20_000, 4, seed=73)}

    def config(self):
        return JobConfig(chunk_size=65_536, input_replication=NODES,
                         scheduler=SCHEDULER)


CASES = {"wordcount": WordCount(), "terasort": TeraSort(), "kmeans": KMeans()}


@pytest.fixture(scope="module", params=sorted(CASES))
def cell(request):
    """(case, golden fault-free result) per application."""
    case = CASES[request.param]
    return case, case.run()


@pytest.mark.parametrize("count", SEVERITIES)
def test_map_crashes(cell, count):
    case, golden = cell
    plan = FaultPlan(map_failures={s: 1 for s in range(count)})
    res = case.run(faults=plan)
    case.assert_same_output(res, golden)
    assert res.stats["leaked_buffer_slots"] == 0
    assert res.metrics.reexecutions == count
    assert res.stats["task_failures"] == count
    assert res.job_time > golden.job_time


@pytest.mark.parametrize("count", SEVERITIES)
def test_reduce_crashes(cell, count):
    case, golden = cell
    # Only partitions that hold data spawn a reduce task, so target the
    # first ``count`` occupied ones.
    occupied = [pid for pid in sorted(golden.output) if golden.output[pid]]
    assert len(occupied) >= count
    plan = FaultPlan(reduce_failures={p: 1 for p in occupied[:count]})
    res = case.run(faults=plan)
    case.assert_same_output(res, golden)
    assert res.stats["leaked_buffer_slots"] == 0
    assert res.metrics.reexecutions == count
    assert res.stats["task_failures"] == count
    # The retried task may sit off the critical path, so the job is only
    # guaranteed not to get faster — but the retry always burns work.
    assert res.job_time >= golden.job_time
    assert res.metrics.wasted_seconds > 0


@pytest.mark.parametrize("count", SEVERITIES)
def test_node_crashes(cell, count):
    case, golden = cell
    # Stagger the victims through the map window; 3 crashes leave
    # a single survivor to finish the job.
    crashes = tuple(NodeCrash(node=i + 1,
                              at=golden.map_time * (0.3 + 0.2 * i))
                    for i in range(count))
    res = case.run(faults=FaultPlan(node_crashes=crashes))
    case.assert_same_output(res, golden)
    # Killed pipelines must hand every acquired buffer slot back (the
    # interrupt paths in _kernel_stage/_output_stage release on the way
    # out; the reaper drains in-flight queue slots).
    assert res.stats["leaked_buffer_slots"] == 0
    assert sorted(res.stats["dead_nodes"]) == [c.node for c in crashes]
    assert res.metrics.node_crashes == count
    assert res.metrics.reexecutions == res.stats["reexecuted_splits"]
    assert res.job_time > golden.job_time


@pytest.mark.parametrize("count", SEVERITIES)
def test_stragglers_with_speculation(cell, count):
    case, golden = cell
    plan = FaultPlan(stragglers={s: 6.0 for s in range(count)})
    cfg = case.config().with_(speculative_execution=True)
    res = case.run(faults=plan, config=cfg)
    case.assert_same_output(res, golden)
    assert res.stats["leaked_buffer_slots"] == 0
    # Stragglers are slow, not failed: nothing re-executes, and any
    # speculative win must come from an actual launch.
    assert res.metrics.reexecutions == 0
    assert res.metrics.speculative_wins <= res.metrics.speculative_launches
    assert res.job_time >= golden.job_time


def test_node_crash_degrades_gracefully():
    """The acceptance bound: losing 1 of 4 nodes mid-map costs wordcount
    strictly more than the fault-free run but less than 2x."""
    case = CASES["wordcount"]
    golden = case.run()
    plan = FaultPlan(node_crashes=(NodeCrash(node=2, at=golden.map_time / 2),))
    res = case.run(faults=plan)
    assert canonical(res) == canonical(golden)
    assert res.stats["leaked_buffer_slots"] == 0
    assert golden.job_time < res.job_time < 2 * golden.job_time
    assert res.metrics.recovery_time > 0


def test_speculation_beats_plain_straggler():
    case = CASES["wordcount"]
    plan = lambda: FaultPlan(stragglers={3: 8.0})
    slow = case.run(faults=plan())
    spec = case.run(faults=plan(),
                    config=case.config().with_(speculative_execution=True))
    assert spec.stats["speculative_wins"] >= 1
    assert spec.job_time < slow.job_time
    assert canonical(spec) == canonical(slow)


def test_crash_after_shuffle_is_ignored():
    """The monitor only arms for the map/shuffle window: a crash time
    beyond it must leave the run untouched."""
    case = CASES["wordcount"]
    golden = case.run()
    res = case.run(faults=FaultPlan(
        node_crashes=(NodeCrash(node=1, at=golden.job_time * 10),)))
    assert res.stats["dead_nodes"] == []
    assert res.job_time == pytest.approx(golden.job_time)
    assert canonical(res) == canonical(golden)
