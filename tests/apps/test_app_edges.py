"""Application edge cases: skew, empty clusters, degenerate shapes."""

import numpy as np
import pytest

from repro.apps import KMeansApp, MatMulApp, TeraSortApp
from repro.apps import datagen
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.storage.records import NO_COMPRESSION


def test_terasort_with_skewed_keys_still_totally_ordered():
    """Heavily skewed key distribution: the sampled range partitioner
    still yields total order (though partitions become unbalanced)."""
    rng = np.random.default_rng(9)
    records = []
    for _ in range(3_000):
        if rng.random() < 0.8:
            key = b"\x00" * 8 + bytes(rng.integers(0, 256, 2).tolist())
        else:
            key = bytes(rng.integers(0, 256, 10).tolist())
        records.append(key + bytes(rng.integers(0, 256, 90).tolist()))
    data = b"".join(records)
    app = TeraSortApp.from_input(data, sample_every=37)
    res = run_glasswing(app, {"t": data}, das4_cluster(nodes=3),
                        JobConfig(chunk_size=30_000, output_replication=1,
                                  compression=NO_COMPRESSION))
    keys = [k for k, _ in res.output_pairs()]
    assert len(keys) == 3_000
    assert keys == sorted(keys)


def test_terasort_all_identical_keys():
    data = (b"K" * 10 + b"v" * 90) * 500
    app = TeraSortApp.from_input(data, sample_every=10)
    res = run_glasswing(app, {"t": data}, das4_cluster(nodes=2),
                        JobConfig(chunk_size=10_000, output_replication=1,
                                  compression=NO_COMPRESSION))
    assert len(list(res.output_pairs())) == 500


def test_kmeans_empty_clusters_simply_absent():
    """Centers that attract no points produce no output pair (the
    iterative driver keeps their previous position)."""
    centers = np.array([[0.0, 0.0], [1e6, 1e6]], dtype=np.float32)
    pts = np.zeros((100, 2), dtype=np.float32) + 5.0
    app = KMeansApp(centers)
    res = run_glasswing(app, {"p": pts.tobytes()}, das4_cluster(nodes=1),
                        JobConfig(chunk_size=1024, storage="local"))
    out = dict(res.output_pairs())
    assert set(out) == {0}
    assert np.allclose(out[0], (5.0, 5.0))


def test_kmeans_single_point():
    app = KMeansApp(datagen.kmeans_centers(4, 4, seed=9))
    pt = datagen.kmeans_points(1, 4, seed=10)
    res = run_glasswing(app, {"p": pt}, das4_cluster(nodes=2),
                        JobConfig(chunk_size=1024, storage="local"))
    assert len(list(res.output_pairs())) == 1


def test_matmul_identity():
    """A @ I == A survives the whole pipeline."""
    n, t = 64, 32
    rng = np.random.default_rng(11)
    a = rng.random((n, n), dtype=np.float32)
    eye = np.eye(n, dtype=np.float32)
    parts = []
    header = np.empty(3, dtype="<i4")
    for i in range(n // t):
        for j in range(n // t):
            for k in range(n // t):
                header[:] = (i, j, k)
                parts.append(header.tobytes())
                parts.append(np.ascontiguousarray(
                    a[i*t:(i+1)*t, k*t:(k+1)*t]).tobytes())
                parts.append(np.ascontiguousarray(
                    eye[k*t:(k+1)*t, j*t:(j+1)*t]).tobytes())
    blob = b"".join(parts)
    app = MatMulApp(t)
    res = run_glasswing(app, {"mm": blob}, das4_cluster(nodes=2),
                        JobConfig(chunk_size=app.record_format.record_size,
                                  storage="local"))
    c = app.assemble(list(res.output_pairs()), n)
    assert np.allclose(c, a, rtol=1e-5)


def test_cost_scale_validation():
    with pytest.raises(ValueError):
        KMeansApp(datagen.kmeans_centers(4, 4), cost_scale=0)
    with pytest.raises(ValueError):
        MatMulApp(16, cost_scale=-1)
