"""Unit tests for the five applications' map/combine/reduce logic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import (KMeansApp, MatMulApp, PageViewApp, TeraSortApp,
                        WordCountApp)
from repro.apps import datagen
from repro.hw.presets import CPU_TYPE1, GTX480


# ------------------------------------------------------------- wordcount
def test_wc_map_batch():
    app = WordCountApp()
    pairs = app.map_batch([b"the quick fox", b"the dog"])
    assert pairs == [(b"the", 1), (b"quick", 1), (b"fox", 1),
                     (b"the", 1), (b"dog", 1)]


def test_wc_combine_and_reduce():
    app = WordCountApp()
    assert app.combine(b"x", [1, 1, 1]) == [3]
    assert app.reduce(b"x", [3, 2]) == [(b"x", 5)]


def test_wc_run_combine_fast_path():
    app = WordCountApp()
    out = dict(app.run_combine([(b"a", 1), (b"b", 2), (b"a", 3)]))
    assert out == {b"a": 4, b"b": 2}


def test_wc_map_cost_scales_with_bytes():
    app = WordCountApp()
    small = app.map_cost(CPU_TYPE1, 10, 1000)
    big = app.map_cost(CPU_TYPE1, 100, 10_000)
    assert big.flops == pytest.approx(10 * small.flops)


# -------------------------------------------------------------- pageview
def test_pvc_map_extracts_url():
    app = PageViewApp()
    pairs = app.map_batch([b"en wiki/Foo 1 1234", b"en wiki/Bar 1 99",
                           b"short"])
    assert pairs == [(b"wiki/Foo", 1), (b"wiki/Bar", 1)]


def test_pvc_cheaper_than_wc_per_byte():
    """PVC does less work per record than WC (the paper's scaling story)."""
    pvc = PageViewApp().map_cost(CPU_TYPE1, 100, 10_000)
    wc = WordCountApp().map_cost(CPU_TYPE1, 100, 10_000)
    assert pvc.flops < wc.flops


# -------------------------------------------------------------- terasort
def test_ts_map_splits_key_value():
    data = datagen.teragen(10, seed=1)
    app = TeraSortApp.from_input(data, sample_every=2)
    records = app.record_format.split_records(data)
    pairs = app.map_batch(records)
    assert len(pairs) == 10
    for (k, v), rec in zip(pairs, records):
        assert k == rec[:10] and v == rec[10:]


def test_ts_partitioner_is_monotone():
    data = datagen.teragen(1000, seed=2)
    app = TeraSortApp.from_input(data, sample_every=7)
    keys = sorted(data[i:i + 10] for i in range(0, len(data), 100))
    pids = [app.partition(k, 8) for k in keys]
    assert pids == sorted(pids)
    assert 0 <= min(pids) and max(pids) <= 7


def test_ts_partitioner_balanced():
    data = datagen.teragen(5000, seed=3)
    app = TeraSortApp.from_input(data, sample_every=13)
    from collections import Counter
    counts = Counter(app.partition(data[i:i + 10], 10)
                     for i in range(0, len(data), 100))
    assert len(counts) == 10
    assert max(counts.values()) < 3 * min(counts.values())


def test_ts_requires_sample():
    with pytest.raises(ValueError):
        TeraSortApp([])


@settings(max_examples=50, deadline=None)
@given(st.lists(st.binary(min_size=10, max_size=10), min_size=1, max_size=50),
       st.integers(min_value=1, max_value=16))
def test_ts_partition_respects_split_order_property(keys, n_parts):
    app = TeraSortApp(keys)
    ordered = sorted(keys)
    pids = [app.partition(k, n_parts) for k in ordered]
    assert pids == sorted(pids)


# ---------------------------------------------------------------- kmeans
def test_km_assigns_to_nearest_center():
    centers = np.array([[0.0, 0.0], [10.0, 10.0]], dtype=np.float32)
    app = KMeansApp(centers)
    pts = np.array([[1.0, 1.0], [9.0, 9.0]], dtype=np.float32)
    pairs = app.map_batch([pts.tobytes()])
    assert [k for k, _ in pairs] == [0, 1]


def test_km_combine_accumulates():
    app = KMeansApp(np.zeros((2, 2), dtype=np.float32))
    out = app.combine(0, [((1.0, 2.0), 1), ((3.0, 4.0), 2)])
    assert out == [((4.0, 6.0), 3)]


def test_km_reduce_averages():
    app = KMeansApp(np.zeros((2, 2), dtype=np.float32))
    [(key, center)] = app.reduce(1, [((4.0, 6.0), 2)])
    assert key == 1
    assert center == (2.0, 3.0)


def test_km_single_iteration_matches_numpy():
    pts_blob = datagen.kmeans_points(2000, 4, seed=9)
    centers = datagen.kmeans_centers(8, 4, seed=10)
    app = KMeansApp(centers)
    pairs = app.map_batch([pts_blob])
    # Direct numpy reference.
    pts = np.frombuffer(pts_blob, dtype=np.float32).reshape(-1, 4)
    d = ((pts[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    assign = d.argmin(axis=1)
    from collections import defaultdict
    sums = defaultdict(lambda: np.zeros(4))
    counts = defaultdict(int)
    for cid, vec in zip(assign, pts):
        sums[cid] += vec
        counts[cid] += 1
    got = {}
    for key, grp in __import__("itertools").groupby(
            sorted(pairs), key=lambda kv: kv[0]):
        vals = [v for _, v in grp]
        [(k, center)] = app.reduce(key, vals)
        got[k] = center
    for cid in counts:
        expected = sums[cid] / counts[cid]
        assert np.allclose(got[cid], expected, rtol=1e-4)


def test_km_cost_scales_with_centers():
    app_small = KMeansApp(datagen.kmeans_centers(16, 4))
    app_big = KMeansApp(datagen.kmeans_centers(256, 4))
    small = app_small.map_cost(CPU_TYPE1, 1000, 16_000)
    big = app_big.map_cost(CPU_TYPE1, 1000, 16_000)
    assert big.flops == pytest.approx(16 * small.flops)


def test_km_gpu_prefers_max_occupancy():
    app = KMeansApp(datagen.kmeans_centers(16, 4))
    assert app.preferred_threads(GTX480) == GTX480.compute_units
    assert app.preferred_threads(CPU_TYPE1) is None


def test_km_centers_validation():
    with pytest.raises(ValueError):
        KMeansApp(np.zeros(5, dtype=np.float32))


# ---------------------------------------------------------------- matmul
def test_mm_single_task_product():
    blob, a, b = datagen.matmul_tasks(16, 16, seed=11)
    app = MatMulApp(16)
    records = app.record_format.split_records(blob)
    [(key, tile)] = app.map_batch(records)
    assert key == (0, 0)
    got = np.frombuffer(tile, dtype=np.float32).reshape(16, 16)
    assert np.allclose(got, a @ b, rtol=1e-5)


def test_mm_reduce_sums_partials():
    app = MatMulApp(2)
    t1 = np.ones((2, 2), dtype=np.float32).tobytes()
    t2 = (np.ones((2, 2), dtype=np.float32) * 3).tobytes()
    [(key, total)] = app.reduce((0, 0), [t1, t2])
    assert np.allclose(np.frombuffer(total, dtype=np.float32), 4.0)


def test_mm_cost_cubic_in_tile():
    small = MatMulApp(16).map_cost(CPU_TYPE1, 1, 100)
    big = MatMulApp(32).map_cost(CPU_TYPE1, 1, 100)
    assert big.flops == pytest.approx(8 * small.flops)


def test_mm_tile_validation():
    with pytest.raises(ValueError):
        MatMulApp(0)
