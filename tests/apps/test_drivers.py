"""Unit tests of the iterative k-means driver's correctness fixes:
tolerance-aware convergence, center validation, orphan tracking."""

import numpy as np
import pytest

from repro.apps.datagen import kmeans_points
from repro.apps.drivers import KMeansRun, _validate_centers, kmeans_iterate
from repro.core import JobConfig
from repro.hw.presets import das4_cluster


def separable_inputs():
    """Two tight blobs far apart: converges in very few iterations."""
    rng = np.random.default_rng(51)
    a = rng.normal((0.0, 0.0), 0.1, size=(300, 2))
    b = rng.normal((50.0, 50.0), 0.1, size=(300, 2))
    return {"points": np.vstack([a, b]).astype(np.float32).tobytes()}


def run(tolerance, max_iterations=8, centers=None, engine="dag"):
    if centers is None:
        centers = np.array([[1.0, 1.0], [40.0, 40.0]], dtype=np.float32)
    return kmeans_iterate(separable_inputs(), centers,
                          das4_cluster(nodes=2),
                          JobConfig(chunk_size=4 * 1024, storage="local"),
                          max_iterations=max_iterations,
                          tolerance=tolerance, engine=engine)


# -- satellite 1: converged respects the run's own tolerance ---------------

def test_converged_uses_run_tolerance_not_hardcoded_epsilon():
    result = run(tolerance=1e-2)
    assert result.tolerance == 1e-2
    assert result.converged
    assert result.iterations < 8
    assert result.shifts[-1] < 1e-2


def test_converged_compares_against_the_runs_own_tolerance():
    # The fixed bug: `converged` used a hard-coded 1e-9 epsilon, so a
    # run that stopped at its (much looser) tolerance reported False.
    base = dict(centers=np.zeros((1, 1), dtype=np.float32),
                iterations=1, results=[], shifts=[5e-3])
    assert KMeansRun(tolerance=1e-2, **base).converged
    assert not KMeansRun(tolerance=1e-4, **base).converged
    assert not KMeansRun(tolerance=1e-9, **base).converged


def test_budget_exhaustion_is_not_convergence():
    result = run(tolerance=0.0, max_iterations=2)
    assert result.iterations == 2
    assert not result.converged


def test_converged_empty_run_false():
    assert not KMeansRun(centers=np.zeros((1, 1), dtype=np.float32),
                         iterations=0, shifts=[], results=[]).converged


# -- satellite 1/3: validation up front ------------------------------------

def test_zero_iterations_rejected_before_touching_inputs():
    with pytest.raises(ValueError, match="max_iterations"):
        kmeans_iterate({}, np.zeros((2, 2)), das4_cluster(nodes=1),
                       max_iterations=0)


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        run(tolerance=0.0, engine="quantum")


# -- satellite 2: shape/dtype validation, no silent clamp ------------------

def test_centers_must_be_2d():
    with pytest.raises(ValueError, match=r"\(k, dims\)"):
        _validate_centers(np.zeros(4))
    with pytest.raises(ValueError, match=r"\(k, dims\)"):
        _validate_centers(np.zeros((2, 2, 2)))


def test_centers_must_be_nonempty():
    with pytest.raises(ValueError, match="non-empty"):
        _validate_centers(np.zeros((0, 3)))
    with pytest.raises(ValueError, match="non-empty"):
        _validate_centers(np.zeros((3, 0)))


def test_centers_dtype_must_be_real_numeric():
    with pytest.raises(TypeError, match="real-numeric"):
        _validate_centers(np.zeros((2, 2), dtype=np.complex128))
    with pytest.raises(TypeError, match="real-numeric"):
        _validate_centers(np.array([["a", "b"]], dtype=object))


def test_centers_converted_to_float32_without_mutating_caller():
    original = np.array([[1.5, 2.5]], dtype=np.float64)
    validated = _validate_centers(original)
    assert validated.dtype == np.float32
    validated[0, 0] = 99.0
    assert original[0, 0] == 1.5  # the driver works on a copy


# -- satellite 2: orphaned centers recorded per iteration ------------------

@pytest.mark.parametrize("engine", ["dag", "resubmit"])
def test_orphaned_center_ids_recorded_and_position_kept(engine):
    # The third center sits 1e6 away from every point: never wins one.
    centers = np.array([[1.0, 1.0], [40.0, 40.0], [1e6, 1e6]],
                       dtype=np.float32)
    result = run(tolerance=0.0, max_iterations=3, centers=centers,
                 engine=engine)
    assert len(result.orphaned) == result.iterations
    assert all(orphans == [2] for orphans in result.orphaned)
    assert result.centers[2].tolist() == [1e6, 1e6]


def test_no_orphans_on_well_placed_centers():
    result = run(tolerance=0.0, max_iterations=2)
    assert result.orphaned == [[], []]


# -- engine metadata --------------------------------------------------------

def test_run_records_engine_and_cache():
    dag_run = run(tolerance=0.0, max_iterations=2, engine="dag")
    naive = run(tolerance=0.0, max_iterations=2, engine="resubmit")
    assert dag_run.engine == "dag" and dag_run.runner is not None
    assert naive.engine == "resubmit" and naive.runner is None
    assert dag_run.cache["misses"] > 0


def test_real_datagen_points_converge():
    inputs = {"points": kmeans_points(3_000, 3, seed=55)}
    centers = np.array(np.random.default_rng(56).random((4, 3)) * 100,
                       dtype=np.float32)
    result = kmeans_iterate(inputs, centers, das4_cluster(nodes=2),
                            JobConfig(chunk_size=16 * 1024,
                                      storage="local"),
                            max_iterations=15, tolerance=1.0)
    assert result.converged
    assert result.iterations < 15
    assert result.shifts[-1] < 1.0
