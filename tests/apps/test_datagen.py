"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.apps import datagen


def test_wiki_text_size_and_shape():
    data = datagen.wiki_text(50_000, seed=1)
    assert 0.8 * 50_000 <= len(data) <= 1.3 * 50_000
    assert data.endswith(b"\n")
    words = data.split()
    assert len(words) > 1000
    # Zipf: the most common word should dominate.
    from collections import Counter
    counts = Counter(words)
    top = counts.most_common(1)[0][1]
    assert top > len(words) * 0.05


def test_wiki_text_deterministic():
    assert datagen.wiki_text(10_000, seed=3) == datagen.wiki_text(10_000, seed=3)
    assert datagen.wiki_text(10_000, seed=3) != datagen.wiki_text(10_000, seed=4)


def test_web_logs_sparse_keys():
    data = datagen.web_logs(100_000, seed=2)
    lines = data.strip().split(b"\n")
    urls = [l.split()[1] for l in lines]
    # Sparse: most URLs unique ("duplicate URLs are rare").
    assert len(set(urls)) > 0.7 * len(urls)
    for line in lines[:20]:
        fields = line.split()
        assert len(fields) == 4
        assert fields[0] == b"en"


def test_teragen_record_structure():
    data = datagen.teragen(500, seed=3)
    assert len(data) == 500 * 100
    # Keys should be highly distinct.
    keys = {data[i:i + 10] for i in range(0, len(data), 100)}
    assert len(keys) > 490


def test_kmeans_points_layout():
    blob = datagen.kmeans_points(100, 4, seed=4)
    pts = np.frombuffer(blob, dtype=np.float32).reshape(100, 4)
    assert pts.shape == (100, 4)
    assert (pts >= 0).all() and (pts <= 100).all()


def test_kmeans_centers_shape():
    c = datagen.kmeans_centers(16, 8, seed=5)
    assert c.shape == (16, 8)
    assert c.dtype == np.float32


def test_matmul_tasks_cover_all_partials():
    blob, a, b = datagen.matmul_tasks(64, 16, seed=6)
    rec = datagen.matmul_record_size(16)
    assert len(blob) == rec * (64 // 16) ** 3
    # First record header is (0, 0, 0).
    hdr = np.frombuffer(blob[:12], dtype="<i4")
    assert tuple(hdr) == (0, 0, 0)


def test_matmul_tile_extraction_correct():
    blob, a, b = datagen.matmul_tasks(32, 16, seed=7)
    rec = datagen.matmul_record_size(16)
    first = blob[:rec]
    tiles = np.frombuffer(first, dtype=np.float32, offset=12)
    a00 = tiles[:256].reshape(16, 16)
    b00 = tiles[256:].reshape(16, 16)
    assert np.array_equal(a00, a[:16, :16])
    assert np.array_equal(b00, b[:16, :16])


def test_matmul_size_must_divide():
    with pytest.raises(ValueError):
        datagen.matmul_tasks(100, 33)
