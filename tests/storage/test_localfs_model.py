"""Model-based test: LocalFS behaves like a plain dict of bytes.

Random sequences of writes/appends/reads/deletes are applied both to the
simulated file system and to a pure-Python model; contents must agree at
every step regardless of cache behaviour.
"""

from hypothesis import given, settings, strategies as st

from repro.hw import Node
from repro.hw.presets import type1_node
from repro.simt import Simulator
from repro.storage.localfs import LocalFS

PATHS = ["a", "b", "dir/c"]

op = st.one_of(
    st.tuples(st.just("write"), st.sampled_from(PATHS),
              st.binary(max_size=60)),
    st.tuples(st.just("append"), st.sampled_from(PATHS),
              st.binary(max_size=40)),
    st.tuples(st.just("read"), st.sampled_from(PATHS),
              st.integers(0, 80), st.integers(0, 80)),
    st.tuples(st.just("delete"), st.sampled_from(PATHS)),
    st.tuples(st.just("purge"),),
)


@settings(max_examples=80, deadline=None)
@given(st.lists(op, max_size=30))
def test_localfs_matches_dict_model(ops):
    sim = Simulator()
    fs = LocalFS(Node(sim, type1_node(), 0))
    model = {}

    def drive(gen):
        p = sim.process(gen)
        sim.run()
        return p.value

    for operation in ops:
        kind = operation[0]
        if kind == "write":
            _, path, data = operation
            drive(fs.write(path, data))
            model[path] = data
        elif kind == "append":
            _, path, data = operation
            drive(fs.write(path, data, append=True))
            model[path] = model.get(path, b"") + data
        elif kind == "read":
            _, path, off, ln = operation
            if path in model:
                got = drive(fs.read(path, off, ln))
                assert got == model[path][off:off + ln]
            else:
                assert not fs.exists(path)
        elif kind == "delete":
            _, path = operation
            if path in model:
                fs.delete(path)
                del model[path]
            else:
                assert not fs.exists(path)
        elif kind == "purge":
            fs.purge_cache()  # must never change contents

    for path, data in model.items():
        assert fs.size(path) == len(data)
        assert drive(fs.read(path)) == data
    assert fs.used_bytes() == sum(len(d) for d in model.values())
