"""Tests for record formats, KV schemas, codec and compression model."""

import pytest
from hypothesis import given, strategies as st

from repro.storage.records import (
    NO_COMPRESSION,
    CompressionModel,
    FixedRecordFormat,
    KVSchema,
    TextRecordFormat,
    decode_pairs,
    encode_pairs,
)


# ------------------------------------------------------------ text records
def test_text_split_basic():
    fmt = TextRecordFormat()
    assert fmt.split_records(b"a\nbb\nccc\n") == [b"a", b"bb", b"ccc"]


def test_text_split_no_trailing_newline():
    fmt = TextRecordFormat()
    assert fmt.split_records(b"a\nb") == [b"a", b"b"]


def test_text_split_empty():
    assert TextRecordFormat().split_records(b"") == []


def test_text_record_bytes_includes_newline():
    assert TextRecordFormat().record_bytes(b"abc") == 4


# ----------------------------------------------------------- fixed records
def test_fixed_split():
    fmt = FixedRecordFormat(4)
    assert fmt.split_records(b"aaaabbbbcccc") == [b"aaaa", b"bbbb", b"cccc"]


def test_fixed_split_ragged_rejected():
    with pytest.raises(ValueError):
        FixedRecordFormat(4).split_records(b"aaaab")


def test_fixed_record_size_validation():
    with pytest.raises(ValueError):
        FixedRecordFormat(0)


# -------------------------------------------------------------- KV schema
WC_SCHEMA = KVSchema("wc", key_bytes=lambda k: len(k), value_bytes=lambda v: 4)


def test_schema_pair_bytes():
    assert WC_SCHEMA.pair_bytes("word", 1) == 4 + 4 + 8


def test_schema_size_of():
    pairs = [("a", 1), ("bb", 2)]
    assert WC_SCHEMA.size_of(pairs) == (1 + 4 + 8) + (2 + 4 + 8)


# ------------------------------------------------------------------- codec
def test_codec_round_trip_simple():
    pairs = [("hello", 3), (b"raw", 2.5), (7, "x")]
    assert list(decode_pairs(encode_pairs(pairs))) == pairs


def test_codec_tuple_values():
    pairs = [(("k", 1), (2.0, "v", b"z"))]
    assert list(decode_pairs(encode_pairs(pairs))) == pairs


def test_codec_rejects_unsupported():
    with pytest.raises(TypeError):
        encode_pairs([({"dict": 1}, 2)])


_scalar = st.one_of(
    st.text(max_size=20),
    st.binary(max_size=20),
    st.integers(min_value=-2**60, max_value=2**60),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
)
_value = st.one_of(_scalar, st.tuples(_scalar, _scalar))


@given(st.lists(st.tuples(_value, _value), max_size=30))
def test_codec_round_trip_property(pairs):
    assert list(decode_pairs(encode_pairs(pairs))) == pairs


# ------------------------------------------------------------- compression
def test_compression_sizes_and_times():
    c = CompressionModel(ratio=0.5, compress_bw=100e6, decompress_bw=200e6)
    assert c.compressed_size(1000) == 500
    assert c.compress_seconds(100e6) == pytest.approx(1.0)
    assert c.decompress_seconds(100e6) == pytest.approx(0.5)


def test_no_compression_sentinel():
    assert NO_COMPRESSION.compressed_size(12345) == 12345
    assert NO_COMPRESSION.compress_seconds(10**9) < 1e-6


def test_compression_validation():
    with pytest.raises(ValueError):
        CompressionModel(ratio=0.0)
    with pytest.raises(ValueError):
        CompressionModel(ratio=1.5)
    with pytest.raises(ValueError):
        CompressionModel(compress_bw=0)


@given(st.integers(min_value=0, max_value=10**9))
def test_compression_never_grows(nbytes):
    c = CompressionModel(ratio=0.45)
    assert c.compressed_size(nbytes) <= nbytes
