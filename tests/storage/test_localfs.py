"""Tests for the node-local file system and its page cache."""

import pytest

from repro.hw import Node
from repro.hw.presets import type1_node
from repro.simt import Simulator
from repro.storage.localfs import FileNotFound, LocalFS


def make_fs(cache_fraction=0.5):
    sim = Simulator()
    node = Node(sim, type1_node(), 0)
    return sim, node, LocalFS(node, cache_fraction=cache_fraction)


def run(sim, gen):
    """Drive a storage generator to completion, return its value."""
    p = sim.process(gen)
    sim.run()
    return p.value


def test_write_then_read_round_trip():
    sim, node, fs = make_fs()
    run(sim, fs.write("f", b"hello world"))
    data = run(sim, fs.read("f"))
    assert data == b"hello world"
    assert fs.size("f") == 11


def test_read_range():
    sim, node, fs = make_fs()
    run(sim, fs.write("f", b"0123456789"))
    assert run(sim, fs.read("f", offset=2, length=3)) == b"234"
    assert run(sim, fs.read("f", offset=8)) == b"89"


def test_append():
    sim, node, fs = make_fs()
    run(sim, fs.write("f", b"aaa"))
    run(sim, fs.write("f", b"bbb", append=True))
    assert run(sim, fs.read("f")) == b"aaabbb"


def test_missing_file_raises():
    sim, node, fs = make_fs()
    with pytest.raises(FileNotFound):
        fs.size("nope")
    def reader():
        yield from fs.read("nope")
    p = sim.process(reader())
    with pytest.raises(FileNotFound):
        sim.run()


def test_write_charges_disk_time():
    sim, node, fs = make_fs()
    nbytes = int(160e6)  # 1 second at type-1 write bandwidth
    run(sim, fs.write("big", b"x" * nbytes))
    assert sim.now == pytest.approx(node.spec.disk.seek_time + 1.0, rel=1e-3)


def test_cached_read_is_free_purge_restores_cost():
    sim, node, fs = make_fs()
    nbytes = int(18e6)
    run(sim, fs.write("f", b"y" * nbytes))
    t_after_write = sim.now
    run(sim, fs.read("f"))  # write-through left it cached
    assert sim.now == t_after_write
    assert fs.cache_hits == 1
    fs.purge_cache()
    run(sim, fs.read("f"))
    assert sim.now > t_after_write
    assert fs.cache_misses == 1


def test_cache_eviction_lru():
    sim, node, fs = make_fs(cache_fraction=0.0)
    # Zero cache: every read pays the disk.
    run(sim, fs.write("f", b"z" * 1000))
    t0 = sim.now
    run(sim, fs.read("f"))
    assert sim.now > t0
    assert fs.cache_misses == 1


def test_delete_and_listdir():
    sim, node, fs = make_fs()
    run(sim, fs.write("dir/a", b"1"))
    run(sim, fs.write("dir/b", b"2"))
    run(sim, fs.write("other", b"3"))
    assert fs.listdir("dir/") == ["dir/a", "dir/b"]
    fs.delete("dir/a")
    assert not fs.exists("dir/a")
    assert fs.used_bytes() == 2


def test_overwrite_replaces_content():
    sim, node, fs = make_fs()
    run(sim, fs.write("f", b"old content"))
    run(sim, fs.write("f", b"new"))
    assert run(sim, fs.read("f")) == b"new"
