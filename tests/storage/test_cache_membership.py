"""Membership hygiene of the cache-aside layer: a departing node's
cached ranges model RAM on hardware that just left the pool, so they
must vanish — pinned entries included — with exact byte accounting,
and a node must never be handed a free (never re-paid-for) read when
it comes back.  Includes the regression test for ``purge_caches``
retaining pinned entries of departed nodes.
"""

import random

import pytest

from repro.storage.cache import CacheAsideBackend

from tests.dag.test_cache import FakeBase, drive


@pytest.fixture
def backend():
    base = FakeBase()
    base.install("pinned", bytes(range(256)) * 4)
    base.install("other", b"o" * 1024)
    base.install("mutable", b"m" * 512)
    cache = CacheAsideBackend(base)
    cache.pin("pinned")
    cache.pin("other")
    return base, cache


def test_departure_evicts_everything_the_node_held(backend):
    base, cache = backend
    drive(cache.read(0, "pinned", 0, 128))
    drive(cache.read(0, "other", 0, 256))
    drive(cache.read(1, "pinned", 0, 128))
    assert cache.cached_bytes == 128 + 256 + 128

    cache.mark_departed(0)
    # Node 0's ranges are gone (both paths); node 1's survive.
    assert cache.cached_bytes == 128
    assert cache.departure_evictions == 2
    assert cache.departure_eviction_bytes == 128 + 256
    assert drive(cache.read(1, "pinned", 0, 128)) is not None
    assert cache.hits == 1    # node 1 still hits
    audit = cache.audit()
    assert audit["consistent"]
    assert audit["accounted_bytes"] == audit["actual_bytes"] == 128


def test_departed_node_pays_again_and_is_not_cached(backend):
    base, cache = backend
    drive(cache.read(0, "pinned", 0, 128))
    cache.mark_departed(0)
    # Reads still work (the base serves them) but nothing is retained.
    drive(cache.read(0, "pinned", 0, 128))
    assert cache.cached_bytes == 0
    assert base.reads == [(0, "pinned", 0, 128)] * 2
    assert cache.audit()["consistent"]


def test_rejoin_re_pays_then_caches_again(backend):
    base, cache = backend
    drive(cache.read(0, "pinned", 0, 128))
    cache.mark_departed(0)
    cache.mark_rejoined(0)
    drive(cache.read(0, "pinned", 0, 128))    # miss: re-pays
    drive(cache.read(0, "pinned", 0, 128))    # hit again
    assert len(base.reads) == 2
    assert cache.hits == 1
    assert cache.cached_bytes == 128
    assert cache.audit()["consistent"]


def test_purge_caches_drops_departed_pinned_entries(backend):
    """Regression: stale ``(node, ...)`` keys for departed hardware used
    to survive a purge because pinned paths were exempted — a byte-
    accounting leak and a free read for a re-joining node."""
    base, cache = backend
    drive(cache.read(2, "pinned", 0, 128))
    drive(cache.read(1, "pinned", 0, 128))
    # Simulate the stale state the old bug left behind: the node is on
    # the departed list but its entries were never evicted.
    cache._departed.add(2)
    assert not cache.audit()["consistent"]
    assert cache.audit()["departed_keys"] == [(2, "pinned", 0, 128)]

    cache.purge_caches()
    assert base.purges == 1
    audit = cache.audit()
    assert audit["consistent"] and audit["departed_keys"] == []
    assert cache.cached_bytes == 128          # node 1's entry survives
    assert cache.departure_evictions == 1


def test_stats_expose_membership_counters(backend):
    _, cache = backend
    drive(cache.read(0, "pinned", 0, 64))
    cache.mark_departed(0)
    stats = cache.stats()
    assert stats["departed_nodes"] == [0]
    assert stats["departure_evictions"] == 1
    assert stats["departure_eviction_bytes"] == 64
    cache.mark_rejoined(0)
    assert cache.stats()["departed_nodes"] == []


@pytest.mark.parametrize("seed", range(6))
def test_byte_accounting_is_exact_under_random_churn(seed):
    """Property: any interleaving of reads, departures, rejoins, purges
    and invalidations keeps the accounted byte total equal to the sum of
    resident entries, with no entry owned by a departed node."""
    rng = random.Random(seed)
    base = FakeBase()
    base.install("pinned", bytes(range(256)) * 8)
    base.install("mutable", b"m" * 1024)
    cache = CacheAsideBackend(base, capacity_bytes=1024)
    cache.pin("pinned")
    departed = set()

    for _ in range(200):
        op = rng.randrange(6)
        node = rng.randrange(4)
        if op <= 2:    # reads dominate
            path = "pinned" if rng.random() < 0.8 else "mutable"
            offset = rng.randrange(0, 512)
            drive(cache.read(node, path, offset, rng.randrange(1, 256)))
        elif op == 3:
            cache.mark_departed(node)
            departed.add(node)
        elif op == 4 and departed:
            back = rng.choice(sorted(departed))
            cache.mark_rejoined(back)
            departed.discard(back)
        else:
            (cache.purge_caches if rng.random() < 0.5
             else lambda: cache.invalidate("pinned"))()
        audit = cache.audit()
        assert audit["consistent"], audit
        assert cache.cached_bytes <= 1024

    assert cache.hit_bytes + cache.miss_bytes > 0
    assert cache.stats()["departed_nodes"] == sorted(departed)
