"""Tests for the distributed file system."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import Cluster
from repro.hw.presets import das4_cluster
from repro.simt import Simulator
from repro.storage.dfs import DFS, JNIOverhead
from repro.storage.localfs import FileNotFound


def make_dfs(nodes=4, block_size=1000, replication=3, jni=JNIOverhead()):
    sim = Simulator()
    cluster = Cluster(sim, das4_cluster(nodes=nodes))
    dfs = DFS(cluster, block_size=block_size, replication=replication, jni=jni)
    return sim, cluster, dfs


def run(sim, gen):
    p = sim.process(gen)
    sim.run()
    return p.value


def test_create_read_round_trip():
    sim, cluster, dfs = make_dfs()
    data = bytes(range(256)) * 20  # 5120 bytes -> 6 blocks of 1000
    run(sim, dfs.create("f", data, writer=0))
    assert dfs.size("f") == 5120
    got = run(sim, dfs.read("f", reader=2))
    assert got == data


def test_read_arbitrary_ranges_cross_blocks():
    sim, cluster, dfs = make_dfs(block_size=100)
    data = bytes(i % 251 for i in range(1050))
    run(sim, dfs.create("f", data, writer=1))
    for (off, ln) in [(0, 50), (95, 10), (0, 1050), (999, 51), (100, 900)]:
        assert run(sim, dfs.read("f", off, ln, reader=0)) == data[off:off + ln]


def test_block_locations_cover_file():
    sim, cluster, dfs = make_dfs(block_size=1000)
    data = b"q" * 3500
    run(sim, dfs.create("f", data, writer=0))
    locs = dfs.block_locations("f")
    assert [loc.length for loc in locs] == [1000, 1000, 1000, 500]
    assert [loc.offset for loc in locs] == [0, 1000, 2000, 3000]
    for loc in locs:
        assert len(loc.replicas) == 3
        assert len(set(loc.replicas)) == 3
        assert loc.replicas[0] == 0  # first replica on writer


def test_replication_clamped_to_cluster():
    sim, cluster, dfs = make_dfs(nodes=2, replication=3)
    run(sim, dfs.create("f", b"x" * 100, writer=0))
    assert len(dfs.block_locations("f")[0].replicas) == 2


def test_replication_one_stays_local():
    sim, cluster, dfs = make_dfs(replication=1)
    run(sim, dfs.create("f", b"x" * 2500, writer=3))
    for loc in dfs.block_locations("f"):
        assert loc.replicas == (3,)


def test_replicas_spread_across_nodes():
    sim, cluster, dfs = make_dfs(nodes=4, block_size=100)
    run(sim, dfs.create("f", b"x" * 400, writer=0))
    second_replicas = {loc.replicas[1] for loc in dfs.block_locations("f")}
    assert len(second_replicas) > 1  # round-robin spreads the copies


def test_local_read_faster_than_remote():
    # replication=1 on node 0; compare reading from node 0 vs node 1.
    sim1, c1, d1 = make_dfs(replication=1, jni=None)
    data = b"z" * 500_000
    run(sim1, d1.create("f", data, writer=0))
    d1.purge_caches()
    t0 = sim1.now
    run(sim1, d1.read("f", reader=0))
    local_time = sim1.now - t0

    sim2, c2, d2 = make_dfs(replication=1, jni=None)
    run(sim2, d2.create("f", data, writer=0))
    d2.purge_caches()
    t0 = sim2.now
    run(sim2, d2.read("f", reader=1))
    remote_time = sim2.now - t0
    assert remote_time > local_time


def test_jni_overhead_costs_time():
    data = b"j" * 500_000
    times = {}
    for label, jni in [("native", None), ("jni", JNIOverhead(per_call=1e-3,
                                                             copy_bw=100e6))]:
        sim, cluster, dfs = make_dfs(jni=jni, block_size=100_000)
        run(sim, dfs.create("f", data, writer=0))
        dfs.purge_caches()
        t0 = sim.now
        run(sim, dfs.read("f", reader=0))
        times[label] = sim.now - t0
    assert times["jni"] > times["native"]


def test_delete_removes_blocks():
    sim, cluster, dfs = make_dfs()
    run(sim, dfs.create("f", b"x" * 2000, writer=0))
    assert dfs.node_fs[0].listdir(".dfs/")
    dfs.delete("f")
    assert not dfs.exists("f")
    for fs in dfs.node_fs:
        assert not fs.listdir(".dfs/")


def test_create_existing_path_rejected():
    sim, cluster, dfs = make_dfs()
    run(sim, dfs.create("f", b"1", writer=0))
    def creator():
        yield from dfs.create("f", b"2", writer=0)
    sim.process(creator())
    with pytest.raises(FileExistsError):
        sim.run()


def test_missing_file_raises():
    sim, cluster, dfs = make_dfs()
    with pytest.raises(FileNotFound):
        dfs.size("ghost")
    with pytest.raises(FileNotFound):
        dfs.block_locations("ghost")


def test_listdir_prefix():
    sim, cluster, dfs = make_dfs()
    run(sim, dfs.create("in/part0", b"a", writer=0))
    run(sim, dfs.create("in/part1", b"b", writer=1))
    run(sim, dfs.create("out/part0", b"c", writer=2))
    assert dfs.listdir("in/") == ["in/part0", "in/part1"]


@settings(max_examples=25, deadline=None)
@given(data=st.binary(min_size=0, max_size=5000),
       block_size=st.integers(min_value=1, max_value=700),
       off_frac=st.floats(min_value=0, max_value=1),
       len_frac=st.floats(min_value=0, max_value=1))
def test_dfs_read_matches_slice_property(data, block_size, off_frac, len_frac):
    """Any (offset, length) read equals the equivalent bytes slice."""
    sim = Simulator()
    from repro.hw.presets import das4_cluster as _c
    cluster = Cluster(sim, _c(nodes=3))
    dfs = DFS(cluster, block_size=block_size, replication=2)
    run(sim, dfs.create("f", data, writer=0))
    off = int(off_frac * len(data))
    ln = int(len_frac * (len(data) - off))
    got = run(sim, dfs.read("f", off, ln, reader=1))
    assert got == data[off:off + ln]
