"""Cross-engine output equivalence: Glasswing == Hadoop == GPMR == reference.

The paper: "We verified the output of Glasswing and Hadoop applications
to be identical and correct."  Here every engine is checked against the
sequential reference executor for every application.
"""

import numpy as np
import pytest

from repro.apps import (KMeansApp, MatMulApp, PageViewApp, TeraSortApp,
                        WordCountApp)
from repro.apps import datagen
from repro.baselines.gpmr import GPMRConfig, run_gpmr
from repro.baselines.hadoop import HadoopConfig, run_hadoop
from repro.baselines.reference import run_reference
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.hw.specs import DeviceKind
from repro.storage.records import NO_COMPRESSION

from tests.conftest import assert_outputs_match

CHUNK = 32_768


@pytest.fixture(scope="module")
def wc_inputs():
    return {"wiki": datagen.wiki_text(300_000, seed=1)}


@pytest.fixture(scope="module")
def pvc_inputs():
    return {"logs": datagen.web_logs(200_000, seed=2)}


@pytest.fixture(scope="module")
def km_data():
    pts = datagen.kmeans_points(20_000, 4, seed=4)
    centers = datagen.kmeans_centers(32, 4, seed=5)
    return {"pts": pts}, centers


# ----------------------------------------------------------- wordcount
def test_wordcount_glasswing_matches_reference(wc_inputs):
    app = WordCountApp()
    res = run_glasswing(app, wc_inputs, das4_cluster(nodes=3),
                        JobConfig(chunk_size=CHUNK))
    assert_outputs_match(res.output_pairs(), run_reference(app, wc_inputs))


def test_wordcount_hadoop_matches_reference(wc_inputs):
    app = WordCountApp()
    res = run_hadoop(app, wc_inputs, das4_cluster(nodes=3),
                     HadoopConfig(chunk_size=CHUNK, jvm_startup=0.005))
    assert_outputs_match(res.output_pairs(), run_reference(app, wc_inputs))


def test_wordcount_all_collector_configs_agree(wc_inputs):
    app = WordCountApp()
    ref = run_reference(app, wc_inputs)
    configs = [
        JobConfig(chunk_size=CHUNK, collector="hash", use_combiner=True),
        JobConfig(chunk_size=CHUNK, collector="hash", use_combiner=False),
        JobConfig(chunk_size=CHUNK, collector="buffer", use_combiner=False),
    ]
    for cfg in configs:
        res = run_glasswing(app, wc_inputs, das4_cluster(nodes=2), cfg)
        assert_outputs_match(res.output_pairs(), ref)


def test_wordcount_all_buffering_levels_agree(wc_inputs):
    app = WordCountApp()
    ref = run_reference(app, wc_inputs)
    for level in (1, 2, 3):
        res = run_glasswing(app, wc_inputs, das4_cluster(nodes=2),
                            JobConfig(chunk_size=CHUNK, buffering=level))
        assert_outputs_match(res.output_pairs(), ref)


# ------------------------------------------------------------ pageview
def test_pageview_engines_agree(pvc_inputs):
    app = PageViewApp()
    ref = run_reference(app, pvc_inputs)
    gw = run_glasswing(app, pvc_inputs, das4_cluster(nodes=2),
                       JobConfig(chunk_size=CHUNK))
    hd = run_hadoop(app, pvc_inputs, das4_cluster(nodes=2),
                    HadoopConfig(chunk_size=CHUNK, jvm_startup=0.005))
    assert_outputs_match(gw.output_pairs(), ref)
    assert_outputs_match(hd.output_pairs(), ref)


# ------------------------------------------------------------ terasort
def test_terasort_total_order_and_completeness():
    data = datagen.teragen(3_000, seed=3)
    app = TeraSortApp.from_input(data, sample_every=29)
    res = run_glasswing(
        app, {"tera": data}, das4_cluster(nodes=4),
        JobConfig(chunk_size=30_000, output_replication=1,
                  compression=NO_COMPRESSION))
    out = list(res.output_pairs())
    keys = [k for k, _ in out]
    assert len(out) == 3_000
    assert keys == sorted(keys), "output not totally ordered"
    # Record reassembly: every original record present exactly once.
    originals = sorted(data[i:i + 100] for i in range(0, len(data), 100))
    rebuilt = sorted(k + v for k, v in out)
    assert rebuilt == originals


def test_terasort_hadoop_matches_glasswing():
    data = datagen.teragen(2_000, seed=8)
    app = TeraSortApp.from_input(data, sample_every=31)
    gw = run_glasswing(app, {"t": data}, das4_cluster(nodes=2),
                       JobConfig(chunk_size=20_000, output_replication=1,
                                 compression=NO_COMPRESSION))
    hd = run_hadoop(app, {"t": data}, das4_cluster(nodes=2),
                    HadoopConfig(chunk_size=20_000, jvm_startup=0.005,
                                 output_replication=1,
                                 compression=NO_COMPRESSION))
    assert_outputs_match(gw.output_pairs(), hd.output_pairs())


# -------------------------------------------------------------- kmeans
def test_kmeans_cpu_gpu_hadoop_gpmr_agree(km_data):
    inputs, centers = km_data
    app = KMeansApp(centers)
    ref = run_reference(app, inputs)
    gw_cpu = run_glasswing(app, inputs, das4_cluster(nodes=2),
                           JobConfig(chunk_size=CHUNK))
    gw_gpu = run_glasswing(app, inputs, das4_cluster(nodes=2, gpu=True),
                           JobConfig(chunk_size=CHUNK,
                                     device=DeviceKind.GPU, storage="local"))
    hd = run_hadoop(app, inputs, das4_cluster(nodes=2),
                    HadoopConfig(chunk_size=CHUNK, jvm_startup=0.005))
    gp = run_gpmr(app, inputs, das4_cluster(nodes=2, gpu=True),
                  GPMRConfig(chunk_size=CHUNK))
    for res in (gw_cpu, gw_gpu, hd, gp):
        assert_outputs_match(res.output_pairs(), ref)


# -------------------------------------------------------------- matmul
def test_matmul_product_correct_all_engines():
    blob, A, B = datagen.matmul_tasks(128, 32, seed=6)
    app = MatMulApp(32)
    expected = A @ B
    chunk = app.record_format.record_size * 4
    gw = run_glasswing(app, {"mm": blob}, das4_cluster(nodes=2),
                       JobConfig(chunk_size=chunk))
    hd = run_hadoop(app, {"mm": blob}, das4_cluster(nodes=2),
                    HadoopConfig(chunk_size=chunk, jvm_startup=0.005))
    gp = run_gpmr(app, {"mm": blob}, das4_cluster(nodes=2, gpu=True),
                  GPMRConfig(chunk_size=chunk))
    for res in (gw, hd, gp):
        got = app.assemble(list(res.output_pairs()), 128)
        assert np.allclose(got, expected, rtol=1e-3)


# ------------------------------------------------------- scale variations
@pytest.mark.parametrize("nodes", [1, 2, 5])
def test_wordcount_node_count_does_not_change_output(wc_inputs, nodes):
    app = WordCountApp()
    ref = run_reference(app, wc_inputs)
    res = run_glasswing(app, wc_inputs, das4_cluster(nodes=nodes),
                        JobConfig(chunk_size=CHUNK))
    assert_outputs_match(res.output_pairs(), ref)


def test_partition_count_does_not_change_output(wc_inputs):
    app = WordCountApp()
    ref = run_reference(app, wc_inputs)
    for P in (1, 4, 16):
        res = run_glasswing(app, wc_inputs, das4_cluster(nodes=2),
                            JobConfig(chunk_size=CHUNK,
                                      partitions_per_node=P))
        assert_outputs_match(res.output_pairs(), ref)
