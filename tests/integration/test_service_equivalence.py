"""Solo-vs-concurrent differential: contention changes timing, never data.

The service layer's headline guarantee: a job's *output* depends only on
its data path (inputs, config, app), while sharing the cluster with
other tenants only moves it around in time.  Three mixed jobs
(WordCount, TeraSort, KMeans) run twice —

* **solo** — each on its own fresh cluster via ``run_glasswing``;
* **concurrent** — all three at once through a :class:`JobServer` with
  three dispatch slots on one shared 4-node cluster

— and every byte-level observable must be identical: the sorted output
pairs, the per-job shuffle volume (attributed by the per-tenant
:class:`~repro.net.transport.TrafficMeter`, *not* the shared fabric
total) and the data-path counters.  Parametrized over both placement
policies, because dynamic-locality makes placement decisions from
runtime state that concurrency visibly perturbs.
"""

import pytest

from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.service import JobRequest, JobServer, ServicePolicy

NODES = 4
POLICIES = ("static-affinity", "dynamic-locality")
#: stats keys that describe the data path, not timing — these must be
#: exactly equal between a solo and a contended run
DATA_PATH_KEYS = ("records_mapped", "pairs_emitted", "keys_reduced",
                  "network_bytes", "splits", "leaked_buffer_slots")

REQUESTS = (
    JobRequest(name="wordcount", kind="wordcount", nbytes=32 * 1024,
               seed=11),
    JobRequest(name="terasort", kind="terasort", nbytes=32 * 1024,
               seed=12),
    JobRequest(name="kmeans", kind="kmeans", nbytes=32 * 1024, seed=13),
)


def base_config(scheduler):
    return JobConfig(chunk_size=8 * 1024, partitions_per_node=1,
                     scheduler=scheduler)


def solo_results(scheduler):
    out = {}
    for request in REQUESTS:
        app, inputs, overrides = request.materialize()
        cfg = base_config(scheduler).with_(**overrides)
        out[request.name] = run_glasswing(app, inputs,
                                          das4_cluster(nodes=NODES), cfg)
    return out


@pytest.fixture(scope="module", params=POLICIES)
def scheduler(request):
    return request.param


@pytest.fixture(scope="module")
def runs(scheduler):
    solo = solo_results(scheduler)
    server = JobServer(das4_cluster(nodes=NODES),
                       policy=ServicePolicy(max_running=len(REQUESTS)),
                       config=base_config(scheduler))
    for request in REQUESTS:
        server.submit(request)
    return solo, server.run()


def test_jobs_actually_overlapped(runs):
    """The comparison is only meaningful if the cluster was shared."""
    _, concurrent = runs
    assert concurrent.peak_running == len(REQUESTS)
    assert len(concurrent.completed) == len(REQUESTS)


@pytest.mark.parametrize("name", [r.name for r in REQUESTS])
def test_output_is_bit_identical(runs, name):
    solo, concurrent = runs
    contended = concurrent.job(name).result
    assert contended.sorted_output() == solo[name].sorted_output()


@pytest.mark.parametrize("name", [r.name for r in REQUESTS])
def test_data_path_counters_are_identical(runs, name):
    solo, concurrent = runs
    contended = concurrent.job(name).result
    for key in DATA_PATH_KEYS:
        assert contended.stats[key] == solo[name].stats[key], key


def test_no_job_leaked_buffer_slots(runs):
    _, concurrent = runs
    assert concurrent.leaked_buffer_slots == 0
    for record in concurrent.records:
        assert record.leaked_buffer_slots == 0


def test_contention_only_slows(runs):
    """Sharing the cluster can never make a job finish before its solo
    run: per-job wall time (dispatch -> finish) >= the solo job time."""
    solo, concurrent = runs
    for record in concurrent.completed:
        contended_time = record.finished_at - record.started_at
        assert contended_time >= solo[record.name].job_time - 1e-12
