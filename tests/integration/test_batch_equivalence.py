"""Differential harness for batched hot-path execution.

``batch_size`` is a *simulation granularity* knob, not a modeled behavior
change: re-batching must not alter what the job computes or what the
cluster is charged for.  The ground truth is ``batch_size=1`` (per-record
simulation); every application is re-run at coarser batch sizes and the
harness asserts, for each:

* **identical sorted output** — re-batching may not drop, duplicate or
  reorder a single output pair;
* **identical per-stage byte counters** — disk reads/writes, network
  transfers and every pipeline stage's payload bytes must sum to the
  same totals (largest-remainder apportionment makes this exact, not
  approximate);
* **elapsed within the cost model's rounding tolerance** — all modeled
  costs are additive in records/bytes, so virtual time drifts only by
  the sub-batch overlap microstructure (bounded at a couple of percent);
* **no leaked buffer slots** — the shared-slot interlock returns every
  acquired slot at any granularity.

The strict tier uses the buffer collector without the combiner: the hash
collector's contention penalty and the combiner's partial aggregation
depend on *launch* granularity (how many pairs one kernel invocation
sees), so their cost/byte totals are legitimately batch-dependent.  A
second tier re-checks output equality under the default hash+combiner
configuration, where only the answer — not the counters — must match.
"""

from collections import defaultdict

import pytest

from repro.apps import (KMeansApp, MatMulApp, PageViewApp, TeraSortApp,
                        WordCountApp)
from repro.apps import datagen
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.storage.records import NO_COMPRESSION

from tests.conftest import assert_outputs_match

#: coarse batch sizes checked against the batch_size=1 ground truth
BATCHES = (7, 64, 4096)
#: relative virtual-time tolerance (overlap microstructure, see module doc)
ELAPSED_RTOL = 0.02


def _wordcount():
    return (WordCountApp(), {"wiki": datagen.wiki_text(40_000, seed=5)},
            dict(chunk_size=16_384), 2)


def _pageview():
    return (PageViewApp(), {"logs": datagen.web_logs(30_000, seed=2)},
            dict(chunk_size=16_384), 2)


def _terasort():
    data = datagen.teragen(800, seed=3)
    app = TeraSortApp.from_input(data, sample_every=29)
    return (app, {"tera": data},
            dict(chunk_size=20_000, output_replication=1,
                 compression=NO_COMPRESSION), 2)


def _kmeans():
    pts = datagen.kmeans_points(2_000, 4, seed=4)
    centers = datagen.kmeans_centers(8, 4, seed=5)
    return (KMeansApp(centers), {"pts": pts}, dict(chunk_size=16_384), 2)


def _matmul():
    blob, _a, _b = datagen.matmul_tasks(64, 32, seed=6)
    app = MatMulApp(32)
    return (app, {"mm": blob},
            dict(chunk_size=app.record_format.record_size * 2), 2)


CASES = {
    "wordcount": _wordcount,
    "pageview": _pageview,
    "terasort": _terasort,
    "kmeans": _kmeans,
    "matmul": _matmul,
}


def _run(case_name, batch_size, strict):
    app, inputs, cfg_kwargs, nodes = CASES[case_name]()
    cfg_kwargs = dict(cfg_kwargs)
    if strict:
        # Additive-cost tier: see module docstring.
        cfg_kwargs.update(collector="buffer", use_combiner=False)
    cfg = JobConfig(batch_size=batch_size, **cfg_kwargs)
    return run_glasswing(app, inputs, das4_cluster(nodes=nodes), cfg)


def _byte_counters(res):
    """Per-stage byte totals: every traced span category that carries a
    byte payload, plus the cluster-level monotonic counters."""
    per_cat = defaultdict(int)
    for span in res.timeline.spans:
        nbytes = span.meta.get("bytes")
        if nbytes:
            per_cat[span.category] += nbytes
    per_cat["stats.network_bytes"] = res.stats["network_bytes"]
    per_cat["stats.pairs_emitted"] = res.stats["pairs_emitted"]
    per_cat["stats.records_mapped"] = res.stats["records_mapped"]
    per_cat["stats.keys_reduced"] = res.stats["keys_reduced"]
    return dict(per_cat)


@pytest.fixture(scope="module")
def ground_truth():
    """batch_size=1 runs, one per (case, tier), computed lazily."""
    cache = {}

    def get(case_name, strict):
        key = (case_name, strict)
        if key not in cache:
            cache[key] = _run(case_name, 1, strict)
        return cache[key]

    return get


@pytest.mark.parametrize("batch", BATCHES)
@pytest.mark.parametrize("case_name", sorted(CASES))
def test_batched_run_matches_per_record_ground_truth(ground_truth,
                                                     case_name, batch):
    truth = ground_truth(case_name, True)
    res = _run(case_name, batch, True)

    assert res.stats["leaked_buffer_slots"] == 0
    assert truth.stats["leaked_buffer_slots"] == 0

    # Identical output, pair for pair.
    assert res.sorted_output() == truth.sorted_output()

    # Identical per-stage byte counters (exact, not approximate).
    assert _byte_counters(res) == _byte_counters(truth)

    # Virtual time within the rounding tolerance.  Phase extents get a
    # little extra headroom: their start/end points sit on individual
    # stage boundaries, so the sub-batch overlap microstructure moves
    # them slightly more than the end-to-end job time.
    assert res.job_time == pytest.approx(truth.job_time, rel=ELAPSED_RTOL)
    assert res.map_time == pytest.approx(truth.map_time,
                                         rel=1.5 * ELAPSED_RTOL, abs=1e-9)


@pytest.mark.parametrize("batch", BATCHES)
@pytest.mark.parametrize("case_name", sorted(CASES))
def test_batched_output_equal_under_default_config(ground_truth,
                                                   case_name, batch):
    """Hash collector + combiner: cost totals are launch-granularity
    dependent (so no counter assertions), but the answer must not be."""
    truth = ground_truth(case_name, False)
    res = _run(case_name, batch, False)
    assert res.stats["leaked_buffer_slots"] == 0
    assert_outputs_match(res.output_pairs(), truth.output_pairs())


def test_autotuned_default_equals_explicit_huge_batch():
    """batch_size=None autotunes to one batch per split — identical in
    every respect to an explicit batch no split exceeds."""
    auto = _run("wordcount", None, True)
    huge = _run("wordcount", 1 << 20, True)
    assert auto.stats["batch_autotuned"] is True
    assert huge.stats["batch_autotuned"] is False
    assert auto.job_time == huge.job_time
    assert auto.sorted_output() == huge.sorted_output()
    assert _byte_counters(auto) == _byte_counters(huge)
