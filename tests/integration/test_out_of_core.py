"""Out-of-core behaviour: the paper's central capability claim.

"Glasswing was designed to be scalable and tackle massive out-of-core
dataset sizes" — intermediate data larger than the in-memory cache must
spill, merge on disk and still reduce correctly.
"""

import pytest

from repro.apps import TeraSortApp, WordCountApp
from repro.apps.datagen import teragen, wiki_text
from repro.baselines.reference import run_reference
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.storage.records import NO_COMPRESSION

from tests.conftest import assert_outputs_match


def test_wordcount_spills_and_stays_correct():
    inputs = {"wiki": wiki_text(1_500_000, seed=91)}
    ref = run_reference(WordCountApp(), inputs)
    res = run_glasswing(
        WordCountApp(), inputs, das4_cluster(nodes=2),
        JobConfig(chunk_size=65_536, cache_threshold=50_000,
                  use_combiner=False, storage="local"))
    assert_outputs_match(res.output_pairs(), ref)
    spills = res.timeline.by_category("merge.flush")
    assert spills, "cache threshold never triggered a flush"


def test_terasort_out_of_core_everywhere():
    """TS with input, intermediate and output all beyond the cache."""
    data = teragen(40_000, seed=92)  # 4 MB
    app = TeraSortApp.from_input(data, sample_every=199)
    res = run_glasswing(
        app, {"t": data}, das4_cluster(nodes=3),
        JobConfig(chunk_size=100_000, cache_threshold=64_000,
                  output_replication=1, compression=NO_COMPRESSION,
                  storage="local"))
    out = list(res.output_pairs())
    keys = [k for k, _ in out]
    assert len(out) == 40_000
    assert keys == sorted(keys)
    assert res.timeline.by_category("merge.flush")
    # The continuous merger kept file counts bounded: compactions ran.
    assert res.merge_delay >= 0.0


def test_file_count_bounded_by_continuous_merging():
    inputs = {"wiki": wiki_text(1_000_000, seed=93)}
    res = run_glasswing(
        WordCountApp(), inputs, das4_cluster(nodes=1),
        JobConfig(chunk_size=32_768, cache_threshold=30_000,
                  max_intermediate_files=2, partitions_per_node=2,
                  use_combiner=False, storage="local"))
    compacts = res.timeline.by_category("merge.compact")
    flushes = res.timeline.by_category("merge.flush")
    assert len(flushes) > 2
    assert compacts, "many flushes but the continuous merger never ran"


def test_spilled_and_in_memory_runs_agree():
    """Same job with and without spilling produces identical output."""
    inputs = {"wiki": wiki_text(800_000, seed=94)}
    base = JobConfig(chunk_size=65_536, use_combiner=False, storage="local")
    spilled = run_glasswing(WordCountApp(), inputs, das4_cluster(nodes=2),
                            base.with_(cache_threshold=20_000))
    in_mem = run_glasswing(WordCountApp(), inputs, das4_cluster(nodes=2),
                           base.with_(cache_threshold=1 << 30))
    assert_outputs_match(spilled.output_pairs(), in_mem.output_pairs())
    assert spilled.job_time > in_mem.job_time  # spilling costs real time
