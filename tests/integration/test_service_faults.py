"""Fault matrix with a shared cluster: executor-crash isolation.

Extends the §III-E fault matrix to multi-tenancy: two jobs run
concurrently on one 4-node cluster while one of them suffers an injected
fault — a node crash mid-map, or stragglers with speculation enabled.
Service faults use *executor-crash* semantics: the crash kills the
faulted job's pipelines and intermediate state on that node, while the
neighbour job keeps using the same physical node untouched.

Every cell asserts, for **both** jobs, that the output equals the
fault-free solo golden run — the recovery wave of one tenant must be
invisible in the other tenant's data path — plus the isolation
bookkeeping (dead-node views, re-executions, leak audit).  Parametrized
over static-affinity and dynamic-locality, because recovery replanning
takes the placement policy's path.
"""

import pytest

from repro.core import JobConfig, run_glasswing
from repro.core.faults import FaultPlan, NodeCrash
from repro.hw.presets import das4_cluster
from repro.service import JobRequest, JobServer, JobSubmission, ServicePolicy

NODES = 4
POLICIES = ("static-affinity", "dynamic-locality")
DATA_PATH_KEYS = ("records_mapped", "pairs_emitted", "keys_reduced",
                  "network_bytes", "splits")

#: the faulted job and its unsuspecting neighbour (both byte-exact apps)
VICTIM = JobRequest(name="victim", kind="wordcount", nbytes=32 * 1024,
                    seed=31)
NEIGHBOUR = JobRequest(name="neighbour", kind="terasort", nbytes=32 * 1024,
                       seed=32)


def base_config(scheduler, **extra):
    return JobConfig(chunk_size=8 * 1024, partitions_per_node=1,
                     scheduler=scheduler, **extra)


def materialize(request, scheduler, faults=None, **extra):
    app, inputs, overrides = request.materialize()
    cfg = base_config(scheduler, **extra).with_(**overrides)
    return app, inputs, cfg, faults


def solo_golden(request, scheduler):
    app, inputs, cfg, _ = materialize(request, scheduler)
    return run_glasswing(app, inputs, das4_cluster(nodes=NODES), cfg)


def run_pair(scheduler, victim_faults, **victim_extra):
    server = JobServer(das4_cluster(nodes=NODES),
                       policy=ServicePolicy(max_running=2),
                       config=base_config(scheduler))
    for request, faults, extra in ((VICTIM, victim_faults, victim_extra),
                                   (NEIGHBOUR, None, {})):
        app, inputs, cfg, faults = materialize(request, scheduler, faults,
                                               **extra)
        server.submit(JobSubmission(name=request.name, app=app,
                                    inputs=inputs, config=cfg,
                                    faults=faults))
    return server.run()


@pytest.fixture(scope="module", params=POLICIES)
def scheduler(request):
    return request.param


@pytest.fixture(scope="module")
def goldens(scheduler):
    return {r.name: solo_golden(r, scheduler) for r in (VICTIM, NEIGHBOUR)}


def assert_cell(result, goldens, scheduler):
    """The invariants every fault cell shares."""
    assert result.peak_running == 2, "the jobs must actually overlap"
    for record in result.records:
        assert record.outcome == "completed"
        assert record.leaked_buffer_slots == 0
        got = record.result.sorted_output()
        assert got == goldens[record.name].sorted_output(), record.name
    # the neighbour's data path is untouched by the victim's fault
    neighbour = result.job("neighbour").result
    for key in DATA_PATH_KEYS:
        assert neighbour.stats[key] == goldens["neighbour"].stats[key], key
    assert neighbour.stats["dead_nodes"] == []
    assert neighbour.stats["task_failures"] == 0


def test_node_crash_is_private_to_the_victim(goldens, scheduler):
    """One tenant's node crash triggers *its* recovery wave only."""
    crash_at = goldens["victim"].map_time * 0.5
    result = run_pair(scheduler,
                      FaultPlan(node_crashes=(NodeCrash(node=1,
                                                        at=crash_at),)))
    assert_cell(result, goldens, scheduler)
    victim = result.job("victim").result
    assert victim.stats["dead_nodes"] == [1]
    assert victim.metrics.node_crashes == 1
    assert victim.stats["reexecuted_splits"] >= 1
    # shuffle volume may legitimately differ from the golden (recovery
    # re-pushes), but the leak audit and output equality above hold
    assert victim.stats["leaked_buffer_slots"] == 0


def test_straggler_speculation_under_contention(goldens, scheduler):
    """Speculative duplicates race their stragglers on a shared cluster
    without corrupting either tenant's output."""
    result = run_pair(scheduler, FaultPlan(stragglers={0: 8.0}),
                      speculative_execution=True)
    assert_cell(result, goldens, scheduler)
    victim = result.job("victim").result
    # stragglers are slow, not dead: no failures, no re-executions
    assert victim.stats["task_failures"] == 0
    assert victim.metrics.reexecutions == 0
    assert victim.stats["speculative_wins"] <= \
        victim.stats["speculative_launches"]


def test_concurrent_crash_matches_solo_crash_semantics(goldens, scheduler):
    """The victim's recovered output also equals its *faulted* solo run:
    recovery is deterministic under contention too."""
    crash_at = goldens["victim"].map_time * 0.5
    plan = lambda: FaultPlan(node_crashes=(NodeCrash(node=1, at=crash_at),))
    app, inputs, cfg, _ = materialize(VICTIM, scheduler)
    solo_faulted = run_glasswing(app, inputs, das4_cluster(nodes=NODES),
                                 cfg, faults=plan())
    result = run_pair(scheduler, plan())
    contended = result.job("victim").result
    assert contended.sorted_output() == solo_faulted.sorted_output()
    assert contended.stats["dead_nodes"] == solo_faulted.stats["dead_nodes"]
