"""Chaos determinism: the same seed and membership schedule replays to
a bit-identical simulation — span timeline, stats report and the bench
point dicts the regression gate compares (0% drift by construction).

This is the property that makes ``BENCH_elastic.json`` replayable: if
any membership code path consulted wall-clock, iteration order of an
unordered container, or un-seeded randomness, these tests would flake
immediately.
"""

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.core import JobConfig, run_glasswing
from repro.core.faults import (CoordinatorCrash, FaultPlan, NodeJoin,
                               NodeLeave)
from repro.hw.presets import das4_cluster

from repro.bench import elastic
from repro.bench.regress import ELASTIC_TOLERANCES, compare_point

NODES = 4
FAILOVER = 2e-4


def _spans(res):
    return [(s.category, s.name, s.start, s.end) for s in res.timeline.spans]


def _run_chaos():
    """One job under the full chaos menu: a join, a drain and a
    coordinator failover, all mid-map."""
    inputs = {"wiki": wiki_text(150_000, seed=121)}
    cfg = JobConfig(chunk_size=16_384, storage="dfs", input_replication=3,
                    active_nodes=3, coordinator_replicas=2,
                    failover_timeout=FAILOVER)
    probe = run_glasswing(WordCountApp(), inputs, das4_cluster(nodes=NODES),
                          cfg)
    plan = FaultPlan(
        node_joins=(NodeJoin(None, 0.3 * probe.map_time),),
        node_leaves=(NodeLeave(None, 0.5 * probe.map_time),),
        coordinator_crashes=(CoordinatorCrash(0.4 * probe.map_time),))
    return run_glasswing(WordCountApp(), inputs, das4_cluster(nodes=NODES),
                         cfg, faults=plan)


def test_chaos_timeline_replays_bit_identically():
    a, b = _run_chaos(), _run_chaos()
    assert a.job_time == b.job_time
    assert a.stats == b.stats
    assert a.stats["membership_events"] == b.stats["membership_events"]
    assert sorted(a.output_pairs()) == sorted(b.output_pairs())
    assert _spans(a) == _spans(b)
    # The chaos actually happened — this is not a vacuous replay.
    assert a.stats["joined_nodes"] and a.stats["departed_nodes"]
    assert a.stats["coordinator_failovers"] == 1


def test_seeded_membership_plan_replays_bit_identically():
    inputs = {"wiki": wiki_text(150_000, seed=122)}
    cfg = JobConfig(chunk_size=16_384, storage="dfs", input_replication=3,
                    active_nodes=2, coordinator_replicas=3,
                    failover_timeout=FAILOVER)

    def run_once():
        plan = FaultPlan.seeded(4242, n_splits=8, map_rate=0.2,
                                node_join_count=2, node_leave_count=1,
                                coordinator_crash_count=1,
                                membership_window=(0.0002, 0.002))
        return run_glasswing(WordCountApp(), inputs,
                             das4_cluster(nodes=NODES), cfg, faults=plan)

    a, b = run_once(), run_once()
    assert a.stats == b.stats
    assert _spans(a) == _spans(b)


def test_elastic_bench_points_replay_at_zero_drift():
    """Every point of the elastic bench, regenerated twice, drifts 0%
    on every gated metric — exactly what ``repro.bench.regress`` does
    against the committed ``BENCH_elastic.json``, minus the file."""
    for app in ("elastic:double", "elastic:halve", "elastic:failover"):
        first = elastic.elastic_point(app, kilobytes=48)
        second = elastic.elastic_point(app, kilobytes=48)
        rows = compare_point(first, second, ELASTIC_TOLERANCES)
        assert rows, app    # the gate actually compared something
        assert all(r["ok"] and r["deviation"] == 0.0 for r in rows), \
            (app, [r for r in rows if not r["ok"] or r["deviation"]])
        # wall_s is the one legitimately noisy key; everything else in
        # the point must be literally equal.
        strip = lambda p: {k: v for k, v in p.items() if k != "wall_s"}
        assert strip(first) == strip(second)
