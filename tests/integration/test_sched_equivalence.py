"""Differential equivalence + acceptance tests for the scheduling layer.

Three claims ride on the refactor:

* **compatibility** — the default configuration routes through the
  extracted ``static-affinity`` policy and is bit-identical to an
  explicit one (the committed ``BENCH_scaling.json`` baseline pins the
  same numbers against the pre-refactor engine via ``repro.bench
  regress``);
* **correctness across policies** — placement changes timing, never
  output: every policy reproduces the static run's answer exactly;
* **the paper's scaling claims** — a dynamic policy beats the static
  assignment on skewed inputs (horizontal), and a CPU+GPU device pool
  beats the best single device on a compute-bound app (vertical).
"""

import pytest

from repro.apps import KMeansApp, TeraSortApp, WordCountApp
from repro.apps.datagen import kmeans_centers, kmeans_points, teragen, wiki_text
from repro.core import JobConfig, run_glasswing
from repro.core.sched import SCHEDULER_NAMES
from repro.hw.presets import das4_cluster
from repro.hw.specs import DeviceKind, KiB
from repro.storage.records import NO_COMPRESSION

from tests.conftest import assert_outputs_match

POLICIES = sorted(SCHEDULER_NAMES)


def _wordcount():
    return (WordCountApp(), {"wiki": wiki_text(200_000, seed=21)},
            dict(chunk_size=65_536), 3, True)


def _terasort():
    data = teragen(2_000, seed=22)
    return (TeraSortApp.from_input(data), {"tera": data},
            dict(chunk_size=20_000, output_replication=1,
                 compression=NO_COMPRESSION), 2, True)


def _kmeans():
    return (KMeansApp(kmeans_centers(16, 4, seed=24)),
            {"points": kmeans_points(20_000, 4, seed=23)},
            dict(chunk_size=65_536), 2, False)


APPS = {"wordcount": _wordcount, "terasort": _terasort, "kmeans": _kmeans}


def run_app(case, scheduler=None, **extra):
    app, inputs, cfg_kwargs, nodes, _ = APPS[case]()
    if scheduler is not None:
        cfg_kwargs = dict(cfg_kwargs, scheduler=scheduler)
    cfg = JobConfig(**cfg_kwargs, **extra)
    return run_glasswing(app, inputs, das4_cluster(nodes=nodes), cfg)


# -- compatibility ---------------------------------------------------------

@pytest.mark.parametrize("case", sorted(APPS))
def test_default_config_is_static_affinity(case, monkeypatch):
    """No scheduler selected == explicit static-affinity, bit-identical
    (timings, shuffle bytes, stats and output)."""
    monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    default = run_app(case)
    explicit = run_app(case, scheduler="static-affinity")
    assert default.stats["scheduler"] == "static-affinity"
    assert default.job_time == explicit.job_time
    assert default.map_time == explicit.map_time
    assert default.reduce_time == explicit.reduce_time
    assert default.stats == explicit.stats
    assert sorted(default.output_pairs(), key=repr) == \
        sorted(explicit.output_pairs(), key=repr)


def test_explicit_policy_overrides_environment(monkeypatch):
    """A config-level policy wins over ``$REPRO_SCHEDULER`` — pinned
    tests and the bench baseline stay static under the CI matrix."""
    monkeypatch.setenv("REPRO_SCHEDULER", "oplevel")
    assert JobConfig().scheduler == "oplevel"
    res = run_app("wordcount", scheduler="static-affinity")
    assert res.stats["scheduler"] == "static-affinity"


# -- cross-policy output equivalence ---------------------------------------

@pytest.mark.parametrize("case", sorted(APPS))
def test_every_policy_reproduces_the_static_output(case):
    app, inputs, cfg_kwargs, nodes, exact = APPS[case]()
    results = {pol: run_app(case, scheduler=pol) for pol in POLICIES}
    golden = results["static-affinity"]
    for pol, res in results.items():
        assert res.stats["scheduler"] == pol
        assert res.stats["leaked_buffer_slots"] == 0
        assert res.stats["sched_placements"] > 0
        if exact:
            assert sorted(res.output_pairs(), key=repr) == \
                sorted(golden.output_pairs(), key=repr), pol
        else:      # float reductions may reassociate under reordering
            assert_outputs_match(res.output_pairs(), golden.output_pairs())


# -- horizontal: dynamic placement beats static assignment on skew ---------

def skewed_inputs(nodes, files_per_node=4, s=0.7, seed=1):
    """Zipf-sized single-replica files (the bench's skew recipe, small)."""
    import random
    total = 32 * KiB * nodes
    n_files = files_per_node * nodes
    weights = [1.0 / (i + 1) ** s for i in range(n_files)]
    scale = total / sum(weights)
    sizes = [max(512, int(w * scale)) for w in weights]
    sizes[0] += total - sum(sizes)
    random.Random(seed).shuffle(sizes)
    text = wiki_text(total, seed=42)
    inputs, offset = {}, 0
    for i, size in enumerate(sizes):
        inputs[f"skew{i:04d}"] = text[offset:offset + size]
        offset += size
    return inputs, max(sizes)


def test_dynamic_locality_beats_static_on_skew():
    nodes = 8
    inputs, chunk = skewed_inputs(nodes)
    results = {}
    for pol in POLICIES:
        cfg = JobConfig(chunk_size=chunk, partitions_per_node=1,
                        input_replication=1, scheduler=pol)
        results[pol] = run_glasswing(WordCountApp(), inputs,
                                     das4_cluster(nodes=nodes), cfg)
    static = results["static-affinity"].job_time
    for pol in ("dynamic-locality", "oplevel"):
        assert static / results[pol].job_time >= 1.05, pol
    golden = sorted(results["static-affinity"].output_pairs())
    assert all(sorted(r.output_pairs()) == golden for r in results.values())


# -- vertical: a CPU+GPU pool beats the best single device -----------------

def run_kmeans_heavy(**kwargs):
    inputs = {"p": kmeans_points(120_000, 4, seed=17)}
    app = KMeansApp(kmeans_centers(512, 4, seed=19))
    cfg = JobConfig(chunk_size=32 * KiB, **kwargs)
    return run_glasswing(app, inputs, das4_cluster(nodes=1, gpu=True), cfg)


def test_device_pool_beats_best_single_device():
    cpu = run_kmeans_heavy(device=DeviceKind.CPU)
    gpu = run_kmeans_heavy(device=DeviceKind.GPU)
    pool = run_kmeans_heavy(devices=(DeviceKind.CPU, DeviceKind.GPU))
    best = min(cpu.job_time, gpu.job_time)
    assert pool.job_time < best
    assert pool.stats["leaked_buffer_slots"] == 0
    # the pool splits one data transformation across devices — the answer
    # must not move (kmeans sums stay identical: same per-split partials)
    assert sorted(pool.output_pairs(), key=repr) == \
        sorted(gpu.output_pairs(), key=repr)
    # both devices actually placed work
    report = pool.to_report()
    by_device = report["phases"]["map"]["placement"]["by_device"]
    assert set(by_device) == {"cpu", "gpu"} and min(by_device.values()) > 0


# -- observability end-to-end ----------------------------------------------

def test_placement_is_visible_everywhere():
    app, inputs, cfg_kwargs, nodes, _ = APPS["wordcount"]()
    cfg = JobConfig(metrics_interval=0.001, scheduler="static-affinity",
                    **cfg_kwargs)
    res = run_glasswing(app, inputs, das4_cluster(nodes=nodes), cfg)
    # stats block
    assert res.stats["scheduler"] == "static-affinity"
    assert res.stats["sched_placements"] > 0
    rate = res.stats["sched_locality_hit_rate"]
    assert rate is not None and 0.0 <= rate <= 1.0
    # timeline spans (exported to the Chrome trace)
    places = [s for s in res.timeline.spans if s.category == "sched.place"]
    assert places and all(s.meta["policy"] == "static-affinity"
                          for s in places)
    # job report: top-level scheduling section + per-phase placement
    report = res.to_report()
    sched = report["scheduling"]
    assert sched["policy"] == "static-affinity"
    assert sched["placements"] == res.stats["sched_placements"]
    for phase in ("map", "reduce"):
        placement = report["phases"][phase]["placement"]
        assert placement["policy"] == "static-affinity"
        assert placement["placements"] > 0
        assert sum(placement["by_node"].values()) == \
            placement["placements"]
    # explain() mentions the placement spread
    from repro.obs.report import PipelineReport
    text = PipelineReport(res.timeline, "map").explain()
    assert "placement" in text and "static-affinity" in text
    # telemetry gauges
    names = {m.name for m in res.telemetry.registry.sorted_metrics()}
    assert {"glasswing_sched_queue_depth",
            "glasswing_sched_local_placements",
            "glasswing_sched_remote_placements"} <= names
