"""Determinism: identical inputs give bit-identical simulations.

The simulator breaks ties by sequence number and every data generator is
seeded, so a job's virtual timeline is exactly reproducible — the paper's
"we verified ... to be identical" plus reproducible *timings*, which real
testbeds cannot offer.
"""

from repro.apps import TeraSortApp, WordCountApp
from repro.apps.datagen import teragen, wiki_text
from repro.baselines.gpmr import GPMRConfig, run_gpmr
from repro.baselines.hadoop import HadoopConfig, run_hadoop
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.storage.records import NO_COMPRESSION


def test_glasswing_runs_are_bit_identical():
    inputs = {"wiki": wiki_text(300_000, seed=111)}
    cfg = JobConfig(chunk_size=65_536)
    a = run_glasswing(WordCountApp(), inputs, das4_cluster(nodes=3), cfg)
    b = run_glasswing(WordCountApp(), inputs, das4_cluster(nodes=3), cfg)
    assert a.job_time == b.job_time
    assert a.map_time == b.map_time
    assert a.merge_delay == b.merge_delay
    assert a.reduce_time == b.reduce_time
    assert sorted(a.output_pairs()) == sorted(b.output_pairs())
    assert a.stats == b.stats


def test_hadoop_runs_are_bit_identical():
    inputs = {"wiki": wiki_text(300_000, seed=112)}
    cfg = HadoopConfig(chunk_size=65_536)
    a = run_hadoop(WordCountApp(), inputs, das4_cluster(nodes=3), cfg)
    b = run_hadoop(WordCountApp(), inputs, das4_cluster(nodes=3), cfg)
    assert a.job_time == b.job_time
    assert a.map_phase_time == b.map_phase_time


def test_gpmr_runs_are_bit_identical():
    from repro.apps import KMeansApp
    from repro.apps.datagen import kmeans_centers, kmeans_points
    inputs = {"p": kmeans_points(20_000, 4, seed=113)}
    app_args = kmeans_centers(16, 4, seed=114)
    cfg = GPMRConfig(chunk_size=65_536)
    a = run_gpmr(KMeansApp(app_args), inputs,
                 das4_cluster(nodes=2, gpu=True), cfg)
    b = run_gpmr(KMeansApp(app_args), inputs,
                 das4_cluster(nodes=2, gpu=True), cfg)
    assert a.job_time == b.job_time
    assert a.io_time == b.io_time


def test_faulted_runs_are_bit_identical():
    """A seeded fault schedule — node crash, task failures, stragglers
    with speculation — replays to an identical span timeline: recovery
    and the speculative races are as deterministic as the clean path."""
    from repro.core.faults import FaultPlan

    inputs = {"wiki": wiki_text(300_000, seed=116)}
    cfg = JobConfig(chunk_size=65_536, input_replication=3,
                    speculative_execution=True)

    def run_once():
        plan = FaultPlan.seeded(777, n_splits=5, n_nodes=3,
                                n_partitions=3 * cfg.partitions_per_node,
                                map_rate=0.5, reduce_rate=0.3,
                                straggler_rate=0.5, node_crash_count=1,
                                crash_window=(0.0005, 0.002))
        res = run_glasswing(WordCountApp(), inputs, das4_cluster(nodes=3),
                            cfg, faults=plan)
        return plan, res

    plan_a, a = run_once()
    plan_b, b = run_once()
    assert plan_a.map_failures == plan_b.map_failures
    assert plan_a.node_crashes == plan_b.node_crashes
    assert a.job_time == b.job_time
    assert a.stats == b.stats
    assert sorted(a.output_pairs()) == sorted(b.output_pairs())
    spans_a = [(s.category, s.name, s.start, s.end)
               for s in a.timeline.spans]
    spans_b = [(s.category, s.name, s.start, s.end)
               for s in b.timeline.spans]
    assert spans_a == spans_b


def test_terasort_timeline_identical():
    data = teragen(2_000, seed=115)
    cfg = JobConfig(chunk_size=20_000, output_replication=1,
                    compression=NO_COMPRESSION)
    runs = [run_glasswing(TeraSortApp.from_input(data), {"t": data},
                          das4_cluster(nodes=2), cfg) for _ in range(2)]
    spans_a = [(s.category, s.name, s.start, s.end)
               for s in runs[0].timeline.spans]
    spans_b = [(s.category, s.name, s.start, s.end)
               for s in runs[1].timeline.spans]
    assert spans_a == spans_b
