"""Tests for the continuous-telemetry hub, exporters and validator."""

import json

import pytest

from repro.apps import TeraSortApp, WordCountApp
from repro.apps.datagen import teragen, wiki_text
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.obs.report import aggregate_counters
from repro.obs.telemetry import (Telemetry, ensure_parent_dir,
                                 openmetrics_text, validate_openmetrics,
                                 write_metrics, write_metrics_jsonl,
                                 write_openmetrics)
from repro.simt import Simulator, Timeline


# ------------------------------------------------------------- registry
def test_counter_is_monotonic():
    tele = Telemetry(Simulator(), interval=1.0)
    c = tele.counter("toy_events", link="a->b")
    c.inc(3)
    c.inc()
    assert c.value == 4
    with pytest.raises(ValueError):
        c.inc(-1)


def test_reregistration_returns_same_instrument():
    tele = Telemetry(Simulator(), interval=1.0)
    a = tele.counter("toy_events", node="n0")
    b = tele.counter("toy_events", node="n0")
    assert a is b
    assert tele.counter("toy_events", node="n1") is not a
    assert len(tele.registry) == 2


def test_kind_conflict_rejected():
    tele = Telemetry(Simulator(), interval=1.0)
    tele.counter("toy_metric")
    with pytest.raises(ValueError, match="already registered"):
        tele.gauge("toy_metric")


def test_invalid_names_rejected():
    tele = Telemetry(Simulator(), interval=1.0)
    with pytest.raises(ValueError):
        tele.gauge("bad name")
    with pytest.raises(ValueError):
        tele.gauge("ok_name", **{"0bad": "v"})


def test_gauge_probes_sum_and_capacity_sticks():
    tele = Telemetry(Simulator(), interval=1.0)
    g1 = tele.gauge("toy_depth", probe=lambda: 2, capacity=8.0, node="n0")
    g2 = tele.gauge("toy_depth", probe=lambda: 3, node="n0")
    assert g1 is g2
    assert g1.value == 5
    assert g1.capacity == 8.0


def test_histogram_buckets_cumulative():
    tele = Telemetry(Simulator(), interval=1.0)
    h = tele.histogram("toy_wait_seconds", bounds=(0.1, 1.0))
    for v in (0.05, 0.5, 0.5, 5.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(6.05)
    assert h.cumulative_buckets() == [("0.1", 1), ("1.0", 3), ("+Inf", 4)]


def test_histogram_rejects_unsorted_bounds():
    tele = Telemetry(Simulator(), interval=1.0)
    with pytest.raises(ValueError):
        tele.histogram("toy_bad", bounds=(1.0, 0.5))


# ------------------------------------------------------------- sampler
def _toy_run(interval=1.0, steps=4):
    sim = Simulator()
    tele = Telemetry(sim, interval=interval)
    level = {"v": 0}
    tele.gauge("toy_depth", probe=lambda: level["v"])
    counter = tele.counter("toy_bytes")

    def driver(sim):
        yield sim.timeout(0.5)      # off-tick mutations: sampler ordering
        for _ in range(steps):      # within a tick cannot matter
            level["v"] += 1
            counter.inc(10)
            yield sim.timeout(interval)

    tele.start()
    sim.process(driver(sim))
    sim.run()
    tele.stop()
    return tele


def test_sampler_ticks_in_simulated_time():
    tele = _toy_run()
    # mutations land at 0.5, 1.5, 2.5, 3.5; the sampler gets one trailing
    # tick at 5.0 before the peek-guard retires it on the drained heap
    assert tele.ticks == [1.0, 2.0, 3.0, 4.0, 5.0]
    pts = tele.series()[("toy_depth", ())]
    assert pts == [(1.0, 1), (2.0, 2), (3.0, 3), (4.0, 4), (5.0, 4)]


def test_sampler_final_values_and_rates():
    tele = _toy_run()
    assert tele.final_values() == {"toy_bytes": 40, "toy_depth": 4}
    rates = tele.rates()["toy_bytes"]
    assert rates[0] == (2.0, pytest.approx(10.0))
    assert "toy_depth" not in tele.rates()


def test_sample_dedupes_same_instant():
    sim = Simulator()
    tele = Telemetry(sim, interval=1.0)
    tele.gauge("toy_depth", probe=lambda: 1)
    tele.sample()
    tele.sample()
    assert len(tele.ticks) == 1


def test_sampler_does_not_wedge_an_empty_heap():
    """The sampler must not keep a finished (or deadlocked) sim alive."""
    sim = Simulator()
    tele = Telemetry(sim, interval=0.5)
    tele.gauge("toy_depth", probe=lambda: 0)
    tele.start()
    sim.run()                       # no job at all: must terminate
    assert tele.ticks == [0.5]


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        Telemetry(Simulator(), interval=0.0)
    with pytest.raises(ValueError):
        JobConfig(metrics_interval=-1.0)


# ------------------------------------------------------------- exporters
def test_jsonl_rows_sorted_and_parseable(tmp_path):
    tele = _toy_run()
    path = write_metrics_jsonl(tele, str(tmp_path / "m.jsonl"))
    lines = open(path, encoding="utf-8").read().splitlines()
    rows = [json.loads(line) for line in lines]
    assert len(rows) == len(tele.samples)
    for line, row in zip(lines, rows):
        assert line == json.dumps(row, sort_keys=True)
        assert row["metric"] in ("toy_depth", "toy_bytes")


def test_write_metrics_dispatches_on_extension(tmp_path):
    tele = _toy_run()
    om = write_metrics(tele, str(tmp_path / "m.om"))
    jl = write_metrics(tele, str(tmp_path / "m.jsonl"))
    assert open(om, encoding="utf-8").read().endswith("# EOF\n")
    assert open(jl, encoding="utf-8").read().startswith("{")


def test_openmetrics_export_validates():
    text = openmetrics_text(_toy_run())
    assert validate_openmetrics(text) > 0
    assert "toy_bytes_total" in text        # counter suffix is mandatory


def test_exports_are_deterministic(tmp_path):
    a = write_openmetrics(_toy_run(), str(tmp_path / "a.om"))
    b = write_openmetrics(_toy_run(), str(tmp_path / "b.om"))
    assert open(a, "rb").read() == open(b, "rb").read()


def test_ensure_parent_dir_creates_nested(tmp_path):
    target = tmp_path / "deep" / "er" / "file.txt"
    assert ensure_parent_dir(str(target)) == str(target)
    assert target.parent.is_dir()
    ensure_parent_dir(str(target))          # idempotent


# ------------------------------------------------------------- validator
def _valid_exposition():
    return ("# TYPE toy_bytes counter\n"
            'toy_bytes_total{node="n0"} 5 1.0\n'
            'toy_bytes_total{node="n0"} 9 2.0\n'
            "# EOF\n")


def test_validator_accepts_wellformed():
    assert validate_openmetrics(_valid_exposition()) == 2


@pytest.mark.parametrize("mutation,message", [
    (lambda t: t.replace("# EOF\n", ""), "EOF"),
    (lambda t: t.replace("_total", ""), "_total"),
    (lambda t: t.replace(" 9 ", " 3 "), "decreased"),
    (lambda t: "toy_other 1 0.5\n" + t, "before TYPE"),
    (lambda t: t.replace('node="n0"', 'node=n0'), "labels"),
])
def test_validator_rejects(mutation, message):
    with pytest.raises(ValueError, match=message):
        validate_openmetrics(mutation(_valid_exposition()))


def test_validator_rejects_interleaved_families():
    text = ("# TYPE a gauge\n"
            "a 1 0.0\n"
            "# TYPE b gauge\n"
            "b 1 0.0\n"
            "a 2 1.0\n"
            "# EOF\n")
    with pytest.raises(ValueError, match="interleaved"):
        validate_openmetrics(text)


def test_validator_rejects_noncumulative_histogram():
    text = ("# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5 1.0\n'
            'h_bucket{le="1.0"} 3 1.0\n'
            'h_bucket{le="+Inf"} 6 1.0\n'
            "h_count 6 1.0\n"
            "h_sum 1.5 1.0\n"
            "# EOF\n")
    with pytest.raises(ValueError, match="cumulative"):
        validate_openmetrics(text)


def test_validator_rejects_missing_inf_bucket():
    text = ("# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5 1.0\n'
            "h_count 5 1.0\n"
            "h_sum 0.5 1.0\n"
            "# EOF\n")
    with pytest.raises(ValueError, match=r"\+Inf"):
        validate_openmetrics(text)


def _valid_histogram(count="5", summed="0.7", les=("0.1", "1.0", "+Inf"),
                     drop=()):
    lines = ["# TYPE h histogram"]
    lines += [f'h_bucket{{le="{le}"}} {n} 1.0'
              for le, n in zip(les, ("2", "4", count))]
    if "_count" not in drop:
        lines.append(f"h_count {count} 1.0")
    if "_sum" not in drop:
        lines.append(f"h_sum {summed} 1.0")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def test_validator_accepts_wellformed_histogram():
    assert validate_openmetrics(_valid_histogram()) == 5


def test_validator_rejects_duplicate_bucket_bounds():
    with pytest.raises(ValueError, match="strictly increasing"):
        validate_openmetrics(_valid_histogram(les=("0.1", "0.1", "+Inf")))


def test_validator_rejects_out_of_order_bucket_bounds():
    with pytest.raises(ValueError, match="strictly increasing"):
        validate_openmetrics(_valid_histogram(les=("1.0", "0.1", "+Inf")))


def test_validator_requires_count_and_sum():
    with pytest.raises(ValueError, match="without a _count"):
        validate_openmetrics(_valid_histogram(drop=("_count",)))
    with pytest.raises(ValueError, match="without a _sum"):
        validate_openmetrics(_valid_histogram(drop=("_sum",)))


def test_validator_rejects_inf_bucket_count_mismatch():
    text = ("# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5 1.0\n'
            "h_count 6 1.0\n"
            "h_sum 0.5 1.0\n"
            "# EOF\n")
    with pytest.raises(ValueError, match="!= _count"):
        validate_openmetrics(text)


def test_validator_rejects_decreasing_histogram_count_and_sum():
    text = ("# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5 1.0\n'
            "h_count 5 1.0\n"
            "h_sum 2.0 1.0\n"
            'h_bucket{le="+Inf"} 4 2.0\n'
            "h_count 4 2.0\n"
            "h_sum 2.5 2.0\n"
            "# EOF\n")
    with pytest.raises(ValueError, match="_count decreased"):
        validate_openmetrics(text)
    text = ("# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5 1.0\n'
            "h_count 5 1.0\n"
            "h_sum 2.0 1.0\n"
            'h_bucket{le="+Inf"} 6 2.0\n'
            "h_count 6 2.0\n"
            "h_sum 1.5 2.0\n"
            "# EOF\n")
    with pytest.raises(ValueError, match="_sum decreased"):
        validate_openmetrics(text)


def test_exported_wait_counter_is_conformant():
    """The new glasswing_wait_seconds counter rides the sampler into a
    conformant exposition, labelled by wait class."""
    sim = Simulator()
    tele = Telemetry(sim, interval=0.5)
    tl = Timeline()
    tl.telemetry = tele
    tl.record_wait("queue", "q", "map.kernel", "n0", 0.0, 0.25)
    tl.record_wait("shuffle-link", "nic", "net.transfer", "0->1", 0.0, 0.5)
    tele.sample()
    text = openmetrics_text(tele)
    assert validate_openmetrics(text) == 2
    assert 'glasswing_wait_seconds_total{class="queue"} 0.25' in text
    assert 'class="shuffle-link"' in text


# -------------------------------------------------- end-to-end invariance
def _case(name):
    if name == "wordcount":
        return (WordCountApp(), {"wiki": wiki_text(150_000, seed=7)},
                dict(chunk_size=32_768))
    data = teragen(1500, seed=8)
    return (TeraSortApp.from_input(data), {"tera": data},
            dict(chunk_size=50_000, output_replication=1))


@pytest.mark.parametrize("case", ["wordcount", "terasort"])
def test_sampling_does_not_perturb_the_simulation(case):
    """Differential: enabling telemetry changes no time or byte counter."""
    app, inputs, cfg = _case(case)
    base = run_glasswing(app, inputs, das4_cluster(nodes=2),
                         JobConfig(**cfg))
    samp = run_glasswing(app, inputs, das4_cluster(nodes=2),
                         JobConfig(metrics_interval=0.0005, **cfg))
    assert base.telemetry is None
    assert samp.telemetry is not None and samp.telemetry.ticks
    assert samp.job_time == base.job_time
    assert (samp.map_time, samp.merge_delay, samp.reduce_time) == \
           (base.map_time, base.merge_delay, base.reduce_time)
    assert samp.stats == base.stats
    assert aggregate_counters(samp.timeline) == \
           aggregate_counters(base.timeline)
    assert samp.sorted_output() == base.sorted_output()


@pytest.mark.parametrize("case", ["wordcount", "terasort"])
def test_sampled_exports_are_byte_identical_across_runs(case, tmp_path):
    paths = []
    for i in range(2):
        app, inputs, cfg = _case(case)
        res = run_glasswing(app, inputs, das4_cluster(nodes=2),
                            JobConfig(metrics_interval=0.001, **cfg))
        om = write_openmetrics(res.telemetry,
                               str(tmp_path / f"{i}.om"))
        jl = write_metrics_jsonl(res.telemetry,
                                 str(tmp_path / f"{i}.jsonl"))
        paths.append((om, jl))
    (om1, jl1), (om2, jl2) = paths
    assert open(om1, "rb").read() == open(om2, "rb").read()
    assert open(jl1, "rb").read() == open(jl2, "rb").read()
    assert validate_openmetrics(open(om1, encoding="utf-8").read()) > 0


def test_job_telemetry_covers_every_layer():
    app, inputs, cfg = _case("wordcount")
    res = run_glasswing(app, inputs, das4_cluster(nodes=2),
                        JobConfig(metrics_interval=0.001, **cfg))
    names = {m.name for m in res.telemetry.registry.sorted_metrics()}
    assert {"glasswing_pipeline_queue_depth",
            "glasswing_pipeline_slots_in_use",
            "glasswing_pipeline_slot_waiters",
            "glasswing_pipeline_slot_wait_seconds",
            "glasswing_pipeline_queue_wait_seconds",
            "glasswing_merge_cache_bytes",
            "glasswing_merge_backlog_tasks",
            "glasswing_merge_queue_depth",
            "glasswing_shuffle_inflight_bytes",
            "glasswing_shuffle_bytes",
            "glasswing_node_cpu_busy_fraction",
            "glasswing_node_cpu_demand_threads",
            "glasswing_node_disk_busy",
            "glasswing_node_disk_waiters"} <= names
    # cumulative shuffle counters agree with the network's own ledger
    shuffled = sum(
        m.value for m in res.telemetry.registry.sorted_metrics()
        if m.name == "glasswing_shuffle_bytes")
    assert shuffled == res.stats["network_bytes"]


def test_report_folds_in_telemetry():
    app, inputs, cfg = _case("wordcount")
    res = run_glasswing(app, inputs, das4_cluster(nodes=2),
                        JobConfig(metrics_interval=0.001, **cfg))
    report = res.to_report()
    tele = report["telemetry"]
    assert tele["interval_s"] == 0.001
    assert tele["ticks"] == len(res.telemetry.ticks) > 0
    assert tele["series"] == len(res.telemetry.registry)
    assert tele["final"]
    sat = report["phases"]["map"]["saturation"]
    assert sat and all(0.0 <= e["mean_level"] <= e["peak_level"] + 1e-12
                       for e in sat)
    assert json.dumps(report, sort_keys=True)   # JSON-serialisable

    plain = run_glasswing(app, inputs, das4_cluster(nodes=2),
                          JobConfig(**cfg)).to_report()
    assert plain["telemetry"] is None
    assert plain["phases"]["map"]["saturation"] == []
