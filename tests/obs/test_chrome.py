"""Chrome trace export: structure, round-trip, viewer invariants."""

import json

from repro.obs import chrome_trace_events, to_chrome_trace, write_chrome_trace
from repro.obs.chrome import TIME_SCALE
from repro.simt import Timeline


def small_timeline():
    tl = Timeline()
    tl.record("map.input", "node0", 0.0, 2.0, bytes=100, slot=0)
    tl.record("map.kernel", "node0", 1.0, 4.0)
    tl.record("map.kernel", "node1", 0.5, 4.5)
    tl.record("map.elapsed", "node0", 0.0, 5.0)
    tl.record("net.transfer", "0->1", 2.0, 3.0, bytes=64)
    return tl


def test_events_cover_every_span():
    tl = small_timeline()
    events = chrome_trace_events(tl)
    xs = [e for e in events if e["ph"] == "X"]
    assert len(xs) == len(tl)


def test_process_per_instance_thread_per_category():
    events = chrome_trace_events(small_timeline())
    procs = {e["args"]["name"]: e["pid"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert set(procs) == {"node0", "node1", "0->1"}
    assert len(set(procs.values())) == 3    # distinct pids
    threads = {(e["pid"], e["tid"]): e["args"]["name"] for e in events
               if e["ph"] == "M" and e["name"] == "thread_name"}
    # node0's rows: elapsed, input, kernel; node1: kernel; 0->1: transfer.
    assert sorted(threads.values()) == sorted(
        ["map.elapsed", "map.input", "map.kernel", "map.kernel",
         "net.transfer"])
    # Same category gets the same tid in every process.
    kernel_tids = {tid for (_pid, tid), name in threads.items()
                   if name == "map.kernel"}
    assert len(kernel_tids) == 1


def test_stage_rows_sorted_in_dependency_order():
    tl = Timeline()
    for stage in ("output", "retrieve", "kernel", "stage", "input",
                  "elapsed"):
        tl.record(f"map.{stage}", "n0", 0.0, 1.0)
    events = chrome_trace_events(tl)
    tid_of = {e["name"]: e["tid"] for e in events if e["ph"] == "X"}
    ordered = sorted(tid_of, key=lambda c: tid_of[c])
    assert ordered == ["map.elapsed", "map.input", "map.stage",
                       "map.kernel", "map.retrieve", "map.output"]


def test_times_scaled_to_microseconds():
    events = chrome_trace_events(small_timeline())
    ev = next(e for e in events if e["ph"] == "X"
              and e["name"] == "map.input")
    assert ev["ts"] == 0.0
    assert ev["dur"] == 2.0 * TIME_SCALE
    assert ev["cat"] == "map"
    assert ev["args"]["bytes"] == 100


def test_meta_values_json_safe():
    tl = Timeline()
    tl.record("x", "n0", 0.0, 1.0, obj=object(), ok=True, items=[1, 2])
    trace = to_chrome_trace(tl)
    text = json.dumps(trace)              # must not raise
    args = json.loads(text)["traceEvents"][-1]["args"]
    assert args["ok"] is True
    assert isinstance(args["obj"], str)
    assert isinstance(args["items"], str)


def test_flow_events_link_push_to_receiving_merge():
    tl = Timeline()
    tl.record("map.push", "node0", 1.0, 2.0, dst="node1", delivered=True,
              bytes=64)
    tl.record("merge.flush", "node1", 2.5, 3.0, pid=0)
    tl.record("merge.delay", "node1", 4.0, 5.0)
    events = chrome_trace_events(tl)
    flows = [e for e in events if e.get("cat") == "flow"]
    assert len(flows) == 2
    s = next(e for e in flows if e["ph"] == "s")
    f = next(e for e in flows if e["ph"] == "f")
    assert s["id"] == f["id"]
    assert s["name"] == f["name"] == "shuffle"
    # arrow leaves the push at its end, lands on the earliest merge span
    # starting after the push completes
    assert s["ts"] == 2.0 * TIME_SCALE
    assert f["ts"] == 2.5 * TIME_SCALE
    assert f["bp"] == "e"
    pids = {e["args"]["name"]: e["pid"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"}
    assert s["pid"] == pids["node0"]
    assert f["pid"] == pids["node1"]


def test_flow_events_skip_undelivered_and_mergeless_pushes():
    tl = Timeline()
    # undelivered: the owner crashed; recovery re-routes, no arrow
    tl.record("map.push", "node0", 1.0, 2.0, dst="node1", delivered=False)
    # delivered but the destination lane has no merge spans at all
    tl.record("map.push", "node0", 2.0, 3.0, dst="node2", delivered=True)
    events = chrome_trace_events(tl)
    assert [e for e in events if e.get("cat") == "flow"] == []


def test_flow_events_respect_job_lanes():
    """Multi-job sessions: the arrow stays inside its job's lane group."""
    parent = Timeline()
    for job in ("jobA", "jobB"):
        fork = parent.fork(job)
        fork.record("map.push", "node0", 1.0, 2.0, dst="node1",
                    delivered=True)
        fork.record("merge.delay", "node1", 3.0, 4.0)
    events = chrome_trace_events(parent)
    flows = [e for e in events if e.get("cat") == "flow"]
    assert len(flows) == 4
    pids = {e["args"]["name"]: e["pid"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"}
    for job in ("jobA", "jobB"):
        s = [e for e in flows
             if e["ph"] == "s" and e["pid"] == pids[f"{job}:node0"]]
        f = [e for e in flows
             if e["ph"] == "f" and e["pid"] == pids[f"{job}:node1"]]
        assert len(s) == 1 and len(f) == 1
        assert s[0]["id"] == f[0]["id"]


def test_flow_events_on_real_run(wc_result):
    events = chrome_trace_events(wc_result.timeline)
    starts = [e for e in events if e.get("cat") == "flow"
              and e["ph"] == "s"]
    finishes = {e["id"]: e for e in events if e.get("cat") == "flow"
                and e["ph"] == "f"}
    assert starts
    assert {e["id"] for e in starts} == set(finishes)
    for s in starts:
        assert finishes[s["id"]]["ts"] >= s["ts"]
    trace = to_chrome_trace(wc_result.timeline)
    json.dumps(trace)    # flow events serialise with everything else


def test_round_trip_on_real_run(tmp_path, wc_result):
    """A real wordcount run exports a viewer-loadable trace: JSON parses,
    one process row per node, X events for all five map and reduce
    stages (the acceptance criterion)."""
    path = write_chrome_trace(wc_result.timeline, str(tmp_path / "t.json"))
    trace = json.loads(open(path).read())
    assert "traceEvents" in trace
    events = trace["traceEvents"]
    procs = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert {"node0", "node1"} <= procs
    x_names = {e["name"] for e in events if e["ph"] == "X"}
    for phase in ("map", "reduce"):
        for stage in ("input", "stage", "kernel", "retrieve", "output"):
            assert f"{phase}.{stage}" in x_names
    assert all(e["dur"] >= 0 for e in events if e["ph"] == "X")
