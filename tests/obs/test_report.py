"""PipelineReport analysis, counters, and the structured job report."""

import json

import pytest

from repro.obs import PIPELINE_STAGES, PipelineReport, aggregate_counters
from repro.simt import Timeline


def synthetic_timeline():
    """node0: input [0,2]+[2,4], kernel [1,5], output [4,6]; a 1s stall
    [6,7]; then output [7,8].  Elapsed window [0,8]."""
    tl = Timeline()
    tl.record("map.input", "node0", 0.0, 2.0)
    tl.record("map.input", "node0", 2.0, 4.0)
    tl.record("map.kernel", "node0", 1.0, 5.0)
    tl.record("map.output", "node0", 4.0, 6.0)
    tl.record("map.output", "node0", 7.0, 8.0)
    tl.record("map.elapsed", "node0", 0.0, 8.0)
    # node1 finishes first -> node0 is the critical node
    tl.record("map.kernel", "node1", 0.0, 3.0)
    tl.record("map.elapsed", "node1", 0.0, 3.0)
    return tl


def test_critical_node_resolution():
    rep = PipelineReport(synthetic_timeline(), phase="map")
    assert rep.node == "node0"
    assert rep.elapsed == 8.0


def test_explicit_node_override():
    rep = PipelineReport(synthetic_timeline(), phase="map", node="node1")
    assert rep.elapsed == 3.0
    assert rep.dominant_stage == "kernel"


def test_utilization_and_overlap():
    rep = PipelineReport(synthetic_timeline(), phase="map")
    util = rep.utilization()
    assert util["input"] == pytest.approx(4.0 / 8.0)
    assert util["kernel"] == pytest.approx(4.0 / 8.0)
    assert util["output"] == pytest.approx(3.0 / 8.0)
    assert rep.overlap_factor == pytest.approx(11.0 / 8.0)
    assert rep.dominant_stage in ("input", "kernel")   # tied at 4.0


def test_critical_path_attributes_deepest_stage_and_waits():
    rep = PipelineReport(synthetic_timeline(), phase="map")
    path = rep.critical_path()
    # Walk back from 8: output [7,8] -> 1; gap [6,7] -> wait 1;
    # output [4,6] -> 2; kernel [1,4] covers back to 1 -> 3;
    # input [0,1] -> 1.
    assert path["output"] == pytest.approx(3.0)
    assert path["wait"] == pytest.approx(1.0)
    assert path["kernel"] == pytest.approx(3.0)
    assert path["input"] == pytest.approx(1.0)
    assert sum(path.values()) == pytest.approx(rep.elapsed)


def test_empty_phase_is_quiet():
    rep = PipelineReport(Timeline(), phase="reduce")
    assert rep.node is None
    assert rep.elapsed == 0.0
    assert rep.overlap_factor == 0.0
    assert rep.dominant_stage is None
    assert sum(rep.critical_path().values()) == 0.0
    assert "no activity" in rep.explain()


def test_explain_names_dominant_stage():
    text = PipelineReport(synthetic_timeline(), phase="map").explain()
    assert "critical node node0" in text
    assert "dominant stage" in text
    assert "overlap factor" in text
    assert "buffer-wait" in text


def test_aggregate_counters_roll_up():
    tl = Timeline()
    tl.record("map.input", "n0", 0.0, 1.0, bytes=100, slot_wait=0.25)
    tl.record("map.stage", "n0", 1.0, 1.0, bytes=100, passthrough=True)
    tl.record("map.retrieve", "n0", 2.0, 2.0, bytes=40, passthrough=True)
    tl.record("map.output", "n0", 2.0, 3.0, bytes=40, queue_wait=0.5)
    tl.record("map.elapsed", "n0", 0.0, 3.0, slots_acquired=4,
              slots_released=4, slots_leaked=0)
    tl.record("net.transfer", "0->1", 1.0, 2.0, bytes=64, tx_wait=0.1,
              fabric_wait=0.2, rx_wait=0.3)
    tl.record("merge.flush", "n0", 2.5, 2.75, bytes=30, raw_bytes=60)
    c = aggregate_counters(tl)
    assert c["bytes_read"] == 100
    assert c["bytes_staged"] == 100
    assert c["bytes_retrieved"] == 40
    assert c["bytes_output"] == 40
    assert c["bytes_shuffled"] == 64
    assert c["bytes_spilled"] == 30
    assert c["transfers"] == 1
    assert c["slots_acquired"] == 4 and c["slots_leaked"] == 0
    assert c["slot_wait_seconds"] == pytest.approx(0.25)
    assert c["queue_wait_seconds"] == pytest.approx(0.5)
    assert c["net_wait_seconds"] == pytest.approx(0.6)


def test_job_report_structure(wc_result):
    report = wc_result.to_report()
    assert report["schema"] == "glasswing-report/1"
    assert report["app"] == "wordcount"
    assert report["nodes"] == 2
    assert set(report["phases"]) == {"map", "reduce"}
    for phase in report["phases"].values():
        assert set(phase["utilization"]) == set(PIPELINE_STAGES)
        assert phase["elapsed"] > 0
        assert phase["dominant_stage"] in PIPELINE_STAGES
        assert sum(phase["critical_path"].values()) == pytest.approx(
            phase["elapsed"])
    assert report["times"]["job"] == wc_result.job_time
    assert report["counters"]["bytes_read"] > 0
    assert report["counters"]["slots_leaked"] == 0
    assert report["stats"]["leaked_buffer_slots"] == 0
    json.dumps(report)    # fully JSON-serialisable, enums and all


def test_overlap_factor_exceeds_one_with_double_buffering(wc_result):
    """Acceptance: the default buffering=2 workload genuinely pipelines."""
    rep = PipelineReport(wc_result.timeline, phase="map")
    assert rep.overlap_factor > 1.0


# -- degraded inputs: no telemetry, no timeline ----------------------------

def test_saturation_without_telemetry(wc_result):
    """A telemetry-disabled run (no metrics_interval) analyses quietly:
    saturation has no samples to rank, and to_dict stays serialisable."""
    assert wc_result.telemetry is None
    rep = PipelineReport(wc_result.timeline, phase="map")
    assert rep.saturation() == []
    assert rep.saturated_resource() is None
    assert rep.interval_rates() == {}
    d = rep.to_dict()
    assert d["saturation"] == [] and d["saturated_resource"] is None
    json.dumps(d)


def test_placement_without_sched_spans():
    """A timeline predating (or bypassing) the scheduling layer has no
    sched.place spans -> placement() is None, not a crash."""
    tl = synthetic_timeline()
    rep = PipelineReport(tl, phase="map")
    assert rep.placement() is None
    assert rep.to_dict()["placement"] is None


def test_placement_on_real_run(wc_result):
    placement = PipelineReport(wc_result.timeline, phase="map").placement()
    assert placement is not None
    assert placement["policy"] is not None
    assert sum(placement["by_node"].values()) > 0


def test_to_dict_on_empty_timeline():
    rep = PipelineReport(Timeline(), phase="map")
    assert rep.saturation() == []
    assert rep.placement() is None
    d = rep.to_dict()
    assert d["elapsed"] == 0.0
    assert d["dominant_stage"] is None
    assert d["overlap_factor"] == 0.0
    json.dumps(d)


def test_job_report_carries_causal_profile(wc_result):
    report = wc_result.to_report()
    causal = report["causal"]
    assert causal["schema"] == "glasswing-causal/1"
    assert causal["orphan_edges"] == 0
    assert causal["elapsed_s"] == wc_result.job_time
    assert causal["stages"]
    json.dumps(report)
