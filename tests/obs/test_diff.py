"""The run-diff explainer and the ``repro explain-diff`` CLI.

The acceptance test for the whole causal stack lives here: inject a
cost-model slowdown on one stage and the explainer must convict that
stage as the #1 cause — not an envelope span, not a neighbouring stage.
"""

import dataclasses
import json

import pytest

from repro.bench.scaling import sweep_point
from repro.cli import main as cli_main
from repro.core.costs import DEFAULT_HOST_COSTS
from repro.obs import explain_diff, load_profile, render_diff


def _profile(stages, elapsed=10.0):
    return {"schema": "glasswing-causal/1", "elapsed_s": elapsed,
            "self_s": 0.0, "wait_s": 0.0, "wait_classes": {},
            "stages": stages, "aggregates": {}, "tree": {},
            "orphan_edges": 0}


def _stage(self_s=0.0, **waits):
    return {"count": 1, "elapsed_s": self_s + sum(waits.values()),
            "self_s": self_s,
            "waits": {cls: {"seconds": s, "count": 1,
                            "resources": {f"{cls}.r": s}}
                      for cls, s in waits.items()},
            "wait_s": sum(waits.values())}


def test_load_profile_unwraps_reports(tmp_path):
    prof = _profile({})
    assert load_profile(prof) is prof
    report = {"schema": "glasswing-report/1", "causal": prof}
    assert load_profile(report) is prof
    path = tmp_path / "report.json"
    path.write_text(json.dumps(report))
    assert load_profile(str(path)) == prof
    with pytest.raises(ValueError, match="glasswing-causal/1"):
        load_profile({"schema": "something-else"})


def test_diff_ranks_largest_delta_first():
    base = _profile({"map.kernel": _stage(self_s=1.0, queue=0.5),
                     "map.output": _stage(self_s=2.0)}, elapsed=4.0)
    new = _profile({"map.kernel": _stage(self_s=1.0, queue=3.5),
                    "map.output": _stage(self_s=2.1)}, elapsed=7.1)
    diff = explain_diff(base, new)
    assert diff["schema"] == "glasswing-causal-diff/1"
    assert diff["elapsed_delta_s"] == pytest.approx(3.1)
    top = diff["causes"][0]
    assert (top["stage"], top["wait_class"]) == ("map.kernel", "queue")
    assert top["delta_s"] == pytest.approx(3.0)
    assert top["share"] > diff["causes"][1]["share"]


def test_diff_is_deterministic_on_ties():
    base = _profile({"a.x": _stage(self_s=1.0), "a.y": _stage(self_s=1.0)})
    new = _profile({"a.x": _stage(self_s=2.0), "a.y": _stage(self_s=2.0)})
    d1, d2 = explain_diff(base, new), explain_diff(base, new)
    assert d1 == d2
    assert [c["stage"] for c in d1["causes"]] == ["a.x", "a.y"]


def test_top_k_truncates_but_counts_all():
    stages_base = {f"s.{i}": _stage(self_s=1.0) for i in range(12)}
    stages_new = {f"s.{i}": _stage(self_s=1.0 + (i + 1) * 0.1)
                  for i in range(12)}
    diff = explain_diff(_profile(stages_base), _profile(stages_new),
                        top_k=3)
    assert len(diff["causes"]) == 3
    assert diff["n_causes"] == 12
    assert diff["causes"][0]["stage"] == "s.11"


def test_identical_profiles_have_no_causes():
    prof = _profile({"map.kernel": _stage(self_s=1.0)})
    diff = explain_diff(prof, prof)
    assert diff["causes"] == []
    assert "no per-stage differences" in render_diff(diff)


def test_render_diff_table():
    base = _profile({"map.kernel": _stage(self_s=1.0)}, elapsed=2.0)
    new = _profile({"map.kernel": _stage(self_s=1.5)}, elapsed=2.5)
    text = render_diff(explain_diff(base, new))
    assert "elapsed 2.000000s -> 2.500000s" in text
    assert "wait class" in text
    assert "map.kernel" in text and "self" in text
    assert "100.0%" in text


# -- the self-test: injected slowdown convicts the right stage -------------

def test_injected_slowdown_is_ranked_first():
    """10x sort cost -> the map-side partition sort (map.partition_cpu
    self-time) must be the #1 cause of the elapsed delta."""
    base = sweep_point("wordcount", 4)
    slow = dataclasses.replace(DEFAULT_HOST_COSTS,
                               sort_item=DEFAULT_HOST_COSTS.sort_item * 10)
    new = sweep_point("wordcount", 4, costs=slow)
    assert new["elapsed_s"] > base["elapsed_s"]
    diff = explain_diff(base, new)
    top = diff["causes"][0]
    assert top["stage"] == "map.partition_cpu"
    assert top["wait_class"] == "self"
    assert top["delta_s"] > 0


def test_explain_diff_cli(tmp_path, capsys):
    base = sweep_point("wordcount", 1)
    slow = dataclasses.replace(
        DEFAULT_HOST_COSTS,
        decode_item=DEFAULT_HOST_COSTS.decode_item * 8)
    new = sweep_point("wordcount", 1, costs=slow)
    base_path, new_path = tmp_path / "base.json", tmp_path / "new.json"
    base_path.write_text(json.dumps(base))
    new_path.write_text(json.dumps(new))
    out_path = tmp_path / "out" / "diff.json"
    rc = cli_main(["explain-diff", str(base_path), str(new_path),
                   "--top", "4", "--json", str(out_path)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "wait class" in text
    doc = json.loads(out_path.read_text())
    assert doc["schema"] == "glasswing-causal-diff/1"
    assert len(doc["causes"]) <= 4


def test_explain_diff_cli_rejects_non_profiles(tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text("{}")
    with pytest.raises(SystemExit, match="explain-diff"):
        cli_main(["explain-diff", str(bogus), str(bogus)])
