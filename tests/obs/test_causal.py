"""Causal wait-graph profiling: matching, decomposition, profiles.

The tentpole invariant — every span decomposes exactly into self-time
plus per-class wait-time, with zero unattributed seconds — is checked
three ways here: on hand-built timelines where the numbers are known in
closed form, on real runs of the differential apps, and property-style
across random fault schedules (the fault matrix), where interrupted
operations must leave neither spans nor orphan edges behind.
"""

import functools

import pytest

from repro.apps import TeraSortApp, WordCountApp
from repro.apps.datagen import teragen, wiki_text
from repro.core import JobConfig, run_glasswing
from repro.core.faults import FaultPlan
from repro.hw.presets import das4_cluster
from repro.obs import causal_profile, match_waits, verify_decomposition
from repro.obs.causal import is_aggregate_category, span_request_time
from repro.simt import Timeline
from repro.storage.records import NO_COMPRESSION

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:    # pragma: no cover - hypothesis is an optional extra
    HAVE_HYPOTHESIS = False

NODES = 3
CHUNK = 32_768
INPUT_BYTES = 200_000
N_SPLITS = -(-INPUT_BYTES // CHUNK)
FALLBACK_SEEDS = tuple(range(6))


# -- synthetic timelines ---------------------------------------------------

def test_span_request_time_defaults_and_clamps():
    tl = Timeline()
    plain = tl.record("map.kernel", "node0", 1.0, 2.0)
    assert span_request_time(plain) == 1.0
    early = tl.record("map.kernel", "node0", 1.0, 2.0, t_req=0.25)
    assert span_request_time(early) == 0.25
    # malformed t_req values never push the request after the start
    late = tl.record("map.kernel", "node0", 1.0, 2.0, t_req=5.0)
    assert span_request_time(late) == 1.0
    junk = tl.record("map.kernel", "node0", 1.0, 2.0, t_req="soon")
    assert span_request_time(junk) == 1.0


def test_aggregate_categories():
    assert is_aggregate_category("map.elapsed")
    assert is_aggregate_category("phase.map")
    assert is_aggregate_category("dag.round")
    assert is_aggregate_category("svc.job")
    assert is_aggregate_category("job")
    assert not is_aggregate_category("map.kernel")
    assert not is_aggregate_category("net.transfer")


def test_zero_length_waits_are_dropped():
    tl = Timeline()
    assert tl.record_wait("queue", "q", "map.kernel", "node0",
                          1.0, 1.0) is None
    assert tl.record_wait("queue", "q", "map.kernel", "node0",
                          2.0, 1.0) is None
    assert tl.waits == []


def test_match_assigns_edge_to_owning_span():
    tl = Timeline()
    tl.record("map.kernel", "node0", 1.0, 3.0, t_req=0.5)
    tl.record_wait("queue", "map.q", "map.kernel", "node0", 0.5, 1.0)
    assignments, errors = match_waits(tl)
    assert errors == []
    assert [e.wait_class for e in assignments[0]] == ["queue"]


def test_orphan_edge_is_reported():
    tl = Timeline()
    tl.record("map.kernel", "node0", 1.0, 3.0)
    # wrong name: no span of that identity exists
    tl.record_wait("queue", "map.q", "map.kernel", "node9", 1.0, 2.0)
    assignments, errors = match_waits(tl)
    assert assignments[0] == []
    assert len(errors) == 1 and "orphan" in errors[0]
    with pytest.raises(ValueError, match="orphan"):
        verify_decomposition(tl)


def test_op_token_disambiguates_concurrent_spans():
    """Two concurrent same-identity transfers: the op token keeps each
    edge with its own span even though the intervals interleave."""
    tl = Timeline()
    tl.record("net.transfer", "0->1", 0.0, 4.0, op=1, tx_wait=1.0,
              fabric_wait=0.0, rx_wait=0.0)
    tl.record("net.transfer", "0->1", 0.0, 6.0, op=2, tx_wait=3.0,
              fabric_wait=0.0, rx_wait=0.0)
    tl.record_wait("shuffle-link", "nic0.tx", "net.transfer", "0->1",
                   0.0, 1.0, op=1)
    tl.record_wait("shuffle-link", "nic0.tx", "net.transfer", "0->1",
                   0.0, 3.0, op=2)
    summary = verify_decomposition(tl)
    assert summary["edges_matched"] == 2
    assert summary["by_class"]["shuffle-link"] == pytest.approx(4.0)


def test_overlapping_edges_rejected():
    tl = Timeline()
    tl.record("map.kernel", "node0", 0.0, 4.0)
    tl.record_wait("queue", "a", "map.kernel", "node0", 0.0, 2.0)
    tl.record_wait("queue", "b", "map.kernel", "node0", 1.0, 3.0)
    with pytest.raises(ValueError, match="overlapping"):
        verify_decomposition(tl)


def test_untiled_pre_gap_rejected():
    tl = Timeline()
    tl.record("map.kernel", "node0", 2.0, 3.0, t_req=0.0)
    tl.record_wait("queue", "q", "map.kernel", "node0", 0.0, 1.0)
    with pytest.raises(ValueError, match="unattributed"):
        verify_decomposition(tl)


def test_waits_exceeding_elapsed_rejected():
    tl = Timeline()
    tl.record("map.kernel", "node0", 0.0, 1.0)
    tl.record_wait("queue", "q", "map.kernel", "node0", 0.0, 0.9)
    tl.record_wait("buffer-slot", "p", "map.kernel", "node0", 0.9, 1.5)
    with pytest.raises(ValueError):
        verify_decomposition(tl)


def test_net_transfer_meta_cross_check():
    tl = Timeline()
    tl.record("net.transfer", "0->1", 0.0, 2.0, op=1, tx_wait=0.5,
              fabric_wait=0.25, rx_wait=0.0)
    tl.record_wait("shuffle-link", "nic0.tx", "net.transfer", "0->1",
                   0.0, 0.5, op=1)
    # fabric edge missing 0.25s -> the meta cross-check trips
    with pytest.raises(ValueError, match="meta waits"):
        verify_decomposition(tl)


def test_profile_splits_stages_from_aggregates():
    tl = Timeline()
    tl.record("map.elapsed", "node0", 0.0, 10.0)
    tl.record("map.kernel", "node0", 1.0, 5.0, t_req=0.0)
    tl.record_wait("queue", "map.q", "map.kernel", "node0", 0.0, 1.0)
    prof = causal_profile(tl, elapsed_s=10.0)
    assert prof["schema"] == "glasswing-causal/1"
    assert prof["elapsed_s"] == 10.0
    assert set(prof["stages"]) == {"map.kernel"}
    assert set(prof["aggregates"]) == {"map.elapsed"}
    kernel = prof["stages"]["map.kernel"]
    assert kernel["self_s"] == pytest.approx(4.0)
    assert kernel["wait_s"] == pytest.approx(1.0)
    assert kernel["waits"]["queue"]["resources"]["map.q"] == \
        pytest.approx(1.0)
    assert prof["wait_classes"] == {"queue": pytest.approx(1.0)}
    assert prof["orphan_edges"] == 0
    # the envelope's seconds never leak into the diffable totals
    assert prof["self_s"] == pytest.approx(4.0)
    assert prof["wait_s"] == pytest.approx(1.0)


def test_fork_tags_edges_and_counts_waits_once():
    parent = Timeline()
    fork = parent.fork("jobA")
    fork.record("map.kernel", "node0", 1.0, 2.0, t_req=0.0)
    fork.record_wait("queue", "q", "map.kernel", "node0", 0.0, 1.0)
    assert parent.waits[0].meta["job"] == "jobA"
    assert len(parent.waits) == 1 and len(fork.waits) == 1
    summary = verify_decomposition(parent)
    assert summary["edges_matched"] == 1
    prof = causal_profile(parent)
    assert "jobA" in prof["tree"]


# -- real runs -------------------------------------------------------------

def _wc_config(**kw):
    return JobConfig(chunk_size=CHUNK, input_replication=NODES, **kw)


def _wc_run(faults=None, config=None):
    return run_glasswing(WordCountApp(),
                         {"wiki": wiki_text(INPUT_BYTES, seed=61)},
                         das4_cluster(nodes=NODES), config or _wc_config(),
                         faults=faults)


@functools.lru_cache(maxsize=1)
def _golden():
    return _wc_run()


def test_decomposition_holds_on_wordcount(wc_result):
    summary = verify_decomposition(wc_result.timeline)
    assert summary["edges_matched"] > 0
    assert summary["max_residual"] <= 1e-9
    assert "queue" in summary["by_class"]


def test_decomposition_holds_on_terasort():
    data = teragen(2_000, seed=7)
    res = run_glasswing(TeraSortApp.from_input(data), {"tera": data},
                        das4_cluster(nodes=2),
                        JobConfig(chunk_size=16_384, output_replication=1,
                                  compression=NO_COMPRESSION))
    summary = verify_decomposition(res.timeline)
    assert summary["max_residual"] <= 1e-9


def test_profile_of_real_run_accounts_all_stage_time(wc_result):
    prof = causal_profile(wc_result.timeline,
                          elapsed_s=wc_result.job_time)
    assert prof["orphan_edges"] == 0
    for stage, entry in prof["stages"].items():
        assert entry["self_s"] + entry["wait_s"] == \
            pytest.approx(entry["elapsed_s"], abs=1e-9 * entry["count"]), stage
    assert sum(prof["wait_classes"].values()) == \
        pytest.approx(prof["wait_s"], abs=1e-6)


def test_wait_counter_matches_recorded_edges():
    """glasswing_wait_seconds_total == the summed matched edges."""
    res = _wc_run(config=_wc_config(metrics_interval=0.005))
    summary = verify_decomposition(res.timeline)
    totals = {
        metric.label_dict["class"]: metric.value
        for metric in res.telemetry.registry.sorted_metrics()
        if metric.name == "glasswing_wait_seconds"}
    for cls, seconds in summary["by_class"].items():
        assert totals[cls] == pytest.approx(seconds, abs=1e-9)


# -- the fault matrix (property-tested) ------------------------------------

def check_decomposition_under_faults(seed: int) -> None:
    """Any random fault schedule still satisfies the invariant: crashed
    and re-executed operations leave neither orphan edges nor gaps."""
    g = _golden()
    plan = FaultPlan.seeded(
        seed, n_splits=N_SPLITS, n_nodes=NODES,
        n_partitions=NODES * _wc_config().partitions_per_node,
        map_rate=0.4, reduce_rate=0.2, straggler_rate=0.3,
        node_crash_count=seed % 2,
        crash_window=(0.2 * g.map_time, 0.9 * g.map_time))
    cfg = _wc_config(speculative_execution=bool(seed % 2))
    res = _wc_run(faults=plan, config=cfg)
    summary = verify_decomposition(res.timeline)
    assert summary["max_residual"] <= 1e-9


if HAVE_HYPOTHESIS:

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=2**20))
    def test_decomposition_survives_fault_matrix(seed):
        check_decomposition_under_faults(seed)

else:    # pragma: no cover - exercised only without hypothesis

    @pytest.mark.parametrize("seed", FALLBACK_SEEDS)
    def test_decomposition_survives_fault_matrix(seed):
        check_decomposition_under_faults(seed)
