"""Shared fixture: one real wordcount run for the obs test suite."""

import pytest

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster


@pytest.fixture(scope="package")
def wc_result():
    inputs = {"wiki": wiki_text(200_000, seed=51)}
    return run_glasswing(WordCountApp(), inputs, das4_cluster(nodes=2),
                         JobConfig(chunk_size=32_768))
