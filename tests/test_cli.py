"""Tests for the command-line entry points."""

import pytest

from repro.cli import build_parser, main, make_job
from repro.core.config import JobConfig
from repro.hw.specs import DeviceKind


def test_parser_defaults():
    args = build_parser().parse_args(["wordcount"])
    assert args.nodes == 4
    assert args.device == "cpu"
    assert args.storage == "dfs"


def test_parser_rejects_unknown_app():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sorting-hat"])


def test_make_job_wordcount():
    args = build_parser().parse_args(
        ["wordcount", "--megabytes", "0.1", "--chunk-kb", "16"])
    app, inputs, config = make_job(args)
    assert app.name == "wordcount"
    assert "corpus" in inputs
    assert config.chunk_size == 16 * 1024
    assert isinstance(config, JobConfig)


def test_make_job_terasort_sets_replication():
    args = build_parser().parse_args(["terasort", "--records", "500"])
    app, inputs, config = make_job(args)
    assert config.output_replication == 1
    assert len(inputs["teragen"]) == 500 * 100


def test_make_job_kmeans_gpu():
    args = build_parser().parse_args(
        ["kmeans", "--device", "gpu", "--points", "100", "--centers", "4"])
    app, inputs, config = make_job(args)
    assert config.device is DeviceKind.GPU
    assert app.k == 4


def test_make_job_matmul_chunk_is_record():
    args = build_parser().parse_args(["matmul", "--matrix", "64"])
    app, inputs, config = make_job(args)
    assert config.chunk_size == app.record_format.record_size


def test_main_runs_small_job(capsys):
    rc = main(["wordcount", "--nodes", "2", "--megabytes", "0.2",
               "--chunk-kb", "32"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "job time" in out
    assert "output pairs" in out


def test_main_runs_terasort(capsys):
    rc = main(["terasort", "--nodes", "2", "--records", "2000",
               "--chunk-kb", "50"])
    assert rc == 0
    assert "terasort" in capsys.readouterr().out


def test_main_writes_trace_and_report(tmp_path, capsys):
    import json
    trace = tmp_path / "t.json"
    report = tmp_path / "r.json"
    rc = main(["wordcount", "--nodes", "2", "--megabytes", "0.2",
               "--chunk-kb", "32", "--trace-out", str(trace),
               "--report-json", str(report)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "trace written to" in out
    assert "report written to" in out
    t = json.loads(trace.read_text())
    assert any(e.get("ph") == "X" for e in t["traceEvents"])
    r = json.loads(report.read_text())
    assert r["schema"] == "glasswing-report/1"
    assert r["phases"]["map"]["dominant_stage"] is not None


def test_metrics_out_requires_interval():
    with pytest.raises(SystemExit, match="metrics-interval"):
        main(["wordcount", "--metrics-out", "m.om"])


def test_main_writes_metrics_both_formats(tmp_path, capsys):
    import json
    from repro.obs import validate_openmetrics
    om = tmp_path / "m.om"
    jl = tmp_path / "m.jsonl"
    common = ["wordcount", "--nodes", "2", "--megabytes", "0.2",
              "--chunk-kb", "32", "--metrics-interval", "0.001"]
    assert main(common + ["--metrics-out", str(om)]) == 0
    assert main(common + ["--metrics-out", str(jl)]) == 0
    assert "metrics written to" in capsys.readouterr().out
    assert validate_openmetrics(om.read_text()) > 0
    rows = [json.loads(line) for line in jl.read_text().splitlines()]
    assert rows and all({"t", "metric", "type", "labels"} <= set(r)
                        for r in rows)


def test_export_flags_create_parent_dirs(tmp_path, capsys):
    """Regression: --trace-out/--report-json/--metrics-out used to fail
    when the target directory did not exist yet."""
    trace = tmp_path / "a" / "b" / "t.json"
    report = tmp_path / "c" / "d" / "r.json"
    metrics = tmp_path / "e" / "f" / "m.jsonl"
    rc = main(["wordcount", "--nodes", "2", "--megabytes", "0.2",
               "--chunk-kb", "32", "--trace-out", str(trace),
               "--report-json", str(report),
               "--metrics-interval", "0.001", "--metrics-out", str(metrics)])
    assert rc == 0
    assert trace.is_file() and report.is_file() and metrics.is_file()


def test_report_json_keys_sorted(tmp_path):
    import json
    report = tmp_path / "r.json"
    main(["wordcount", "--nodes", "2", "--megabytes", "0.2",
          "--chunk-kb", "32", "--report-json", str(report)])
    text = report.read_text()
    assert text == json.dumps(json.loads(text), indent=2, sort_keys=True)


def test_main_explain_prints_analysis(capsys):
    rc = main(["wordcount", "--nodes", "2", "--megabytes", "0.2",
               "--chunk-kb", "32", "--explain"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "map pipeline" in out
    assert "reduce pipeline" in out
    assert "dominant stage" in out
    assert "critical path" in out


# -- iterative k-means and the dag subcommand -------------------------------

def test_kmeans_iterations_flag_runs_dag_driver(capsys):
    rc = main(["kmeans", "--nodes", "2", "--points", "2000", "--centers",
               "4", "--iterations", "3", "--tolerance", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "kmeans-iterative" in out
    assert "round 3" in out
    assert "input cache" in out
    assert "% hit rate" in out


def test_kmeans_single_iteration_unchanged(capsys):
    """--iterations 1 (the default) stays on the classic one-job path."""
    rc = main(["kmeans", "--nodes", "2", "--points", "2000",
               "--centers", "4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "kmeans-iterative" not in out
    assert "job time" in out


def test_kmeans_iterations_validation():
    with pytest.raises(SystemExit, match="iterations"):
        main(["kmeans", "--iterations", "0"])


def test_kmeans_iterations_reject_fault_flags():
    with pytest.raises(SystemExit, match="single-iteration"):
        main(["kmeans", "--nodes", "2", "--points", "2000", "--centers",
              "4", "--iterations", "2", "--fail-map", "0"])


def test_kmeans_iterative_report(tmp_path, capsys):
    import json
    report = tmp_path / "dag.json"
    rc = main(["kmeans", "--nodes", "2", "--points", "2000", "--centers",
               "4", "--iterations", "2", "--tolerance", "0",
               "--report-json", str(report)])
    assert rc == 0
    r = json.loads(report.read_text())
    assert r["schema"] == "glasswing-dag-report/1"
    assert r["iterations"] == 2
    assert len(r["rounds"]) == 2
    assert r["rounds"][1]["cache_hit_bytes"] > 0


def test_dag_subcommand_prefixsum(capsys):
    rc = main(["dag", "prefixsum", "--nodes", "2", "--values", "2000",
               "--block", "256"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "prefixsum on 2 node(s)" in out
    assert "blocksum@r1" in out and "scan@r1" in out


def test_dag_subcommand_pagerank_trace(tmp_path, capsys):
    import json
    trace = tmp_path / "pr.trace.json"
    rc = main(["dag", "pagerank", "--nodes", "2", "--vertices", "200",
               "--edges", "1000", "--rounds", "2",
               "--trace-out", str(trace)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "degrees@r1" in out and "contrib@r3" in out
    t = json.loads(trace.read_text())
    lanes = {e.get("args", {}).get("job") for e in t["traceEvents"]}
    assert "contrib@r2" in lanes


def test_dag_subcommand_validates_rounds():
    with pytest.raises(SystemExit, match="rounds"):
        main(["dag", "pagerank", "--rounds", "0"])


# -- elastic membership flags (docs/elasticity.md) --------------------------

def test_parser_elastic_flags():
    args = build_parser().parse_args(
        ["wordcount", "--active-nodes", "2", "--join", "auto@0.001",
         "--join", "3@0.002", "--leave", "auto@0.003",
         "--elastic", "2:4", "--coord-replicas", "3",
         "--coord-crash", "0.001", "--failover-timeout", "0.01"])
    assert args.active_nodes == 2
    assert args.join == ["auto@0.001", "3@0.002"]
    assert args.leave == ["auto@0.003"]
    assert args.elastic == "2:4"
    assert args.coord_replicas == 3
    assert args.coord_crash == [0.001]
    assert args.failover_timeout == 0.01


def test_make_faults_builds_membership_schedule():
    from repro.cli import make_faults
    args = build_parser().parse_args(
        ["wordcount", "--join", "auto@0.001", "--leave", "2@0.002",
         "--coord-crash", "0.003"])
    plan = make_faults(args)
    assert plan is not None
    assert plan.node_joins[0].node is None
    assert plan.node_joins[0].at == 0.001
    assert plan.node_leaves[0].node == 2
    assert plan.coordinator_crashes[0].at == 0.003


def test_make_job_elastic_config():
    args = build_parser().parse_args(
        ["wordcount", "--active-nodes", "3", "--coord-replicas", "2",
         "--failover-timeout", "0.02"])
    _, _, config = make_job(args)
    assert config.active_nodes == 3
    assert config.coordinator_replicas == 2
    assert config.failover_timeout == 0.02


def test_membership_spec_validation():
    with pytest.raises(SystemExit, match="--join"):
        main(["wordcount", "--join", "nonsense"])
    with pytest.raises(SystemExit, match="invalid fault schedule"):
        main(["wordcount", "--leave", "1@-0.5"])
    with pytest.raises(SystemExit, match="--elastic"):
        main(["wordcount", "--elastic", "4"])


def test_main_join_and_leave_mid_job(capsys):
    rc = main(["wordcount", "--nodes", "4", "--active-nodes", "2",
               "--megabytes", "0.2", "--chunk-kb", "16",
               "--join", "auto@0.0002", "--leave", "auto@0.0009"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "joined_nodes   [2]" in out
    assert "departed_nodes [2]" in out
    assert "final_active_nodes 2" in out


def test_main_coordinator_failover(capsys):
    rc = main(["wordcount", "--nodes", "2", "--megabytes", "0.2",
               "--chunk-kb", "32", "--coord-replicas", "2",
               "--coord-crash", "0.0003", "--failover-timeout", "0.001"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "coordinator_failovers 1" in out
    assert "coordinator_epoch 1" in out


def test_main_elastic_autoscaler(capsys):
    rc = main(["wordcount", "--nodes", "4", "--active-nodes", "2",
               "--megabytes", "0.4", "--chunk-kb", "16",
               "--elastic", "2:4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "elastic_scale_outs" in out
