"""Tests for ``python -m repro serve`` and the arrival-trace files."""

import json

import pytest

from repro.cli import main, serve_main
from repro.service import JobRequest, dump_trace, load_trace, synthetic_trace


def test_serve_runs_synthetic_trace(capsys):
    rc = main(["serve", "--jobs", "6", "--nodes", "2", "--max-running", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "6 submission(s)" in out
    assert "completed    6" in out
    assert "leaked buffer slots 0" in out
    for field in ("makespan", "throughput", "latency p50", "latency p95",
                  "latency p99"):
        assert field in out


def test_serve_writes_artifacts(tmp_path, capsys):
    report = tmp_path / "svc" / "report.json"
    trace = tmp_path / "svc" / "trace.json"
    metrics = tmp_path / "svc" / "metrics.om"
    rc = serve_main(["--jobs", "4", "--nodes", "2",
                     "--report-json", str(report),
                     "--trace-out", str(trace),
                     "--metrics-interval", "0.002",
                     "--metrics-out", str(metrics)])
    assert rc == 0
    payload = json.loads(report.read_text())
    assert payload["schema"] == "glasswing-service-report/1"
    assert payload["counters"]["completed"] == 4
    assert len(payload["jobs"]) == 4
    events = json.loads(trace.read_text())["traceEvents"]
    # per-job process rows: job-tagged spans render as "<job>:<instance>"
    rows = {e["args"]["name"] for e in events
            if e.get("name") == "process_name"}
    assert any(name.startswith("job0000:") for name in rows)
    assert metrics.read_text().startswith("# ")


def test_serve_metrics_out_requires_interval():
    with pytest.raises(SystemExit, match="metrics-interval"):
        serve_main(["--jobs", "2", "--metrics-out", "m.om"])


def test_serve_replays_trace_file(tmp_path, capsys):
    rows = synthetic_trace(5, seed=9, nbytes_choices=(2048,),
                           kinds=("wordcount",))
    # arrives while the single slot is busy, withdrawn before dispatch
    rows.append(JobRequest(name="late-cancel", kind="wordcount",
                           nbytes=2048, submit_at=rows[0].submit_at + 1e-6,
                           cancel_at=rows[0].submit_at + 1e-5, seed=1))
    path = tmp_path / "trace.json"
    dump_trace(rows, str(path))
    assert load_trace(str(path)) == rows
    rc = serve_main(["--arrival-trace", str(path), "--nodes", "2",
                     "--max-running", "1", "--arbiter", "lpt"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "lpt arbiter" in out
    assert "cancelled    1" in out
    assert "completed    5" in out


def test_serve_rejects_unknown_arbiter():
    with pytest.raises(SystemExit):
        serve_main(["--jobs", "2", "--arbiter", "round-robin"])


def test_dump_trace_rejects_config_overrides(tmp_path):
    row = JobRequest(name="cfg", kind="wordcount",
                     config={"chunk_size": 1024})
    with pytest.raises(ValueError, match="config overrides"):
        dump_trace([row], str(tmp_path / "t.json"))


def test_load_trace_rejects_non_array(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"not": "a trace"}')
    with pytest.raises(ValueError, match="JSON array"):
        load_trace(str(path))


# -- elastic pool flags (docs/elasticity.md) --------------------------------

def test_serve_scale_events_complete_all_jobs(capsys):
    rc = serve_main(["--jobs", "3", "--nodes", "3", "--active-nodes", "2",
                     "--scale-out", "0.0002", "--scale-in", "0.004"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "completed    3" in out
    assert "leaked buffer slots 0" in out


def test_serve_scale_spec_accepts_explicit_node(capsys):
    rc = serve_main(["--jobs", "2", "--nodes", "3", "--active-nodes", "2",
                     "--scale-out", "2@0.0002"])
    assert rc == 0
    assert "completed    2" in capsys.readouterr().out


def test_serve_scale_spec_validation():
    with pytest.raises(SystemExit, match="--scale-out"):
        serve_main(["--jobs", "2", "--scale-out", "two@0.1"])
    with pytest.raises(SystemExit, match="--scale-in"):
        serve_main(["--jobs", "2", "--scale-in", "nope"])


def test_serve_active_nodes_validation():
    with pytest.raises(SystemExit):
        serve_main(["--jobs", "2", "--nodes", "2", "--active-nodes", "5"])
