"""The shared elastic pool: scale events are a *cluster* property, so
one scale-out/in must reach every running tenant's job, later dispatches
must snapshot the new active set, and a neighbour's byte attribution
must never move when another tenant's work is re-homed.
"""

import pytest

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.service import (ElasticPool, JobServer, JobSubmission,
                           ServicePolicy)

NODES = 4
# DFS + replication so drained nodes' splits stay readable; no scheduler
# pin — CI's service matrix swaps the policy via $REPRO_SCHEDULER.
CONFIG = JobConfig(chunk_size=4096, partitions_per_node=1, storage="dfs",
                   input_replication=3)


def make_server(active_nodes=None, policy=None):
    return JobServer(das4_cluster(nodes=NODES), policy=policy, config=CONFIG,
                     active_nodes=active_nodes)


def wc_job(name, tenant="default", nbytes=24 * 1024, seed=0, submit_at=0.0):
    return JobSubmission(name=name, app=WordCountApp(),
                         inputs={f"{name}.txt": wiki_text(nbytes, seed=seed)},
                         tenant=tenant, submit_at=submit_at)


def test_scale_out_reaches_every_running_tenant():
    server = make_server(active_nodes=3)
    server.submit(wc_job("alice-j", tenant="alice", seed=1))
    server.submit(wc_job("bob-j", tenant="bob", seed=2))
    server.scale_out(at=2e-4)
    result = server.run()
    assert len(result.completed) == 2
    assert server.pool.active == [0, 1, 2, 3]
    assert server.pool.events == [{"kind": "scale-out", "node": 3,
                                   "at": pytest.approx(2e-4)}]
    for name in ("alice-j", "bob-j"):
        res = result.job(name).result
        assert res.stats["joined_nodes"] == [3]
        assert res.stats["leaked_buffer_slots"] == 0


def test_scale_in_drains_only_rehomeable_work():
    """Both tenants lose node 3 mid-run: the drained node's unfinished
    work re-homes (re-push preferred), outputs stay correct and nothing
    dies."""
    server = make_server()
    server.submit(wc_job("alice-j", tenant="alice", seed=3))
    server.submit(wc_job("bob-j", tenant="bob", seed=4))
    server.scale_in(at=2e-4)
    result = server.run()
    assert len(result.completed) == 2
    assert server.pool.active == [0, 1, 2]
    for name in ("alice-j", "bob-j"):
        res = result.job(name).result
        assert res.stats["departed_nodes"] == [3]
        assert res.stats["dead_nodes"] == []
        assert res.stats["leaked_buffer_slots"] == 0
        assert res.output_pairs()


def test_neighbour_byte_attribution_is_untouched():
    """Alice's job rides out a scale-in; Bob's identical job runs solo
    on the full pool before the event fires.  Bob's network bytes must
    equal his solo baseline — a neighbour's churn never bills you."""
    solo = run_glasswing(WordCountApp(),
                         {"bob-j.txt": wiki_text(24 * 1024, seed=6)},
                         das4_cluster(nodes=NODES), CONFIG)

    server = make_server()
    server.submit(wc_job("bob-j", tenant="bob", seed=6))
    # Alice arrives after the scale-in, dispatching onto the shrunken
    # pool; Bob's run completed on the full pool long before.
    bob_time = solo.job_time
    server.scale_in(at=bob_time * 2)
    server.submit(wc_job("alice-j", tenant="alice", seed=5,
                         submit_at=bob_time * 3))
    result = server.run()
    assert len(result.completed) == 2
    bob = result.job("bob-j").result
    assert bob.stats["network_bytes"] == solo.stats["network_bytes"]
    assert bob.stats["departed_nodes"] == []
    assert sorted(bob.output_pairs()) == sorted(solo.output_pairs())


def test_later_dispatch_snapshots_the_scaled_pool():
    """A job dispatched after a scale-in starts on the shrunken active
    set — it does not transition mid-run, it is simply born smaller."""
    server = make_server(policy=ServicePolicy(max_running=1))
    server.submit(wc_job("first", seed=7))
    server.scale_in(at=1e-5)    # fires while `first` runs
    server.submit(wc_job("second", seed=8, submit_at=2e-5))
    result = server.run()
    first, second = result.job("first").result, result.job("second").result
    assert first.stats["departed_nodes"] == [3]
    # `second` dispatched after the event: node 3 was never part of it.
    assert second.stats["initial_active_nodes"] == 3
    assert second.stats["departed_nodes"] == []
    assert second.stats["final_active_nodes"] == 3


def test_scale_events_are_recorded_on_the_pool_ledger():
    server = make_server(active_nodes=2)
    server.submit(wc_job("j", seed=9))
    server.scale_out(at=1e-4)
    server.scale_out(at=2e-4, node=3)
    server.scale_in(at=3e-4, node=1)
    result = server.run()
    assert len(result.completed) == 1
    assert [e["kind"] for e in server.pool.events] == \
        ["scale-out", "scale-out", "scale-in"]
    assert [e["node"] for e in server.pool.events] == [2, 3, 1]
    assert server.pool.active == [0, 2, 3]
    assert server.pool.standby == [1]


def test_scale_after_start_raises():
    server = make_server()
    server.submit(wc_job("j", seed=10))
    server.run()
    with pytest.raises(RuntimeError):
        server.scale_out(at=0.1)


def test_pool_is_exported_from_the_service_package():
    assert ElasticPool is not None
    pool = ElasticPool(4, active=2)
    assert pool.active == [0, 1]
