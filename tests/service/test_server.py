"""Lifecycle, throttling, cancellation and observability of JobServer."""

import json

import pytest

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.core import JobConfig
from repro.hw.presets import das4_cluster
from repro.service import (JobServer, JobSubmission, ServicePolicy,
                           synthetic_trace)

# no scheduler pin: CI's service-matrix swaps the placement policy via
# $REPRO_SCHEDULER and every assertion here must hold under all of them
CONFIG = JobConfig(chunk_size=4096, partitions_per_node=1)


def make_server(policy=None, metrics_interval=None):
    return JobServer(das4_cluster(nodes=4), policy=policy, config=CONFIG,
                     metrics_interval=metrics_interval)


def wc_job(name, tenant="default", priority=1, submit_at=0.0, nbytes=2048,
           seed=0, cancel_at=None):
    return JobSubmission(name=name, app=WordCountApp(),
                         inputs={f"{name}.txt": wiki_text(nbytes, seed=seed)},
                         tenant=tenant, priority=priority,
                         submit_at=submit_at, cancel_at=cancel_at)


# -- admission decisions ---------------------------------------------------

def test_full_queue_rejects_the_overflow():
    """capacity 1, one slot: job0 dispatches, job1 queues, job2 bounces."""
    server = make_server(ServicePolicy(queue_capacity=1, max_running=1))
    for i in range(3):
        server.submit(wc_job(f"j{i}", seed=i))
    result = server.run()
    assert result.counters == {"submitted": 3, "admitted": 2, "rejected": 1,
                               "cancelled": 0, "completed": 2}
    assert result.job("j2").outcome == "rejected"
    assert result.job("j2").result is None
    assert [result.job(f"j{i}").outcome for i in range(2)] == \
        ["completed", "completed"]
    assert result.leaked_buffer_slots == 0


def test_tenant_running_throttle_keeps_a_slot_free():
    """A tenant at its running quota waits while another tenant's job
    takes the second slot it could not have."""
    policy = ServicePolicy(max_running=2, max_per_tenant_running=1)
    server = make_server(policy)
    server.submit(wc_job("a1", tenant="alice", seed=1))
    server.submit(wc_job("a2", tenant="alice", seed=2))
    server.submit(wc_job("b1", tenant="bob", seed=3, submit_at=1e-4))
    result = server.run()
    assert len(result.completed) == 3
    a1, a2, b1 = (result.job(n) for n in ("a1", "a2", "b1"))
    # a2 must wait for a1 to finish even though a slot sat free until
    # bob arrived; bob overtakes despite submitting later.
    assert a2.started_at >= a1.finished_at
    assert b1.started_at < a2.started_at
    assert result.peak_running == 2


def test_priority_class_preempts_queue_order():
    """An urgent job submitted later dispatches before a bulk one."""
    server = make_server(ServicePolicy(max_running=1))
    server.submit(wc_job("busy", seed=0))           # occupies the slot
    server.submit(wc_job("bulk", priority=2, seed=1))
    server.submit(wc_job("urgent", priority=0, seed=2, submit_at=1e-5))
    result = server.run()
    assert result.job("urgent").started_at < result.job("bulk").started_at


# -- cancellation / leak audit ---------------------------------------------

def test_cancel_before_dispatch_touches_nothing():
    """A queued job withdrawn before admission to a slot never touches
    the cluster: no execution, no result, no buffer slots — and the
    remaining jobs complete normally."""
    server = make_server(ServicePolicy(max_running=1))
    server.submit(wc_job("long", seed=4, nbytes=16 * 1024))
    server.submit(wc_job("doomed", seed=5, cancel_at=1e-6))
    server.submit(wc_job("after", seed=6))
    result = server.run()
    doomed = result.job("doomed")
    assert doomed.outcome == "cancelled"
    assert doomed.execution is None and doomed.result is None
    assert doomed.started_at is None
    assert result.counters["cancelled"] == 1
    assert result.counters["completed"] == 2
    assert result.leaked_buffer_slots == 0
    assert all(result.job(n).leaked_buffer_slots == 0
               for n in ("long", "after"))


def test_cancel_after_dispatch_is_a_noop():
    """cancel_at landing after the job started does not kill it."""
    server = make_server(ServicePolicy(max_running=1))
    server.submit(wc_job("solo", seed=7, cancel_at=1e-6))
    result = server.run()
    assert result.job("solo").outcome == "completed"
    assert result.counters["cancelled"] == 0


# -- guard rails -----------------------------------------------------------

def test_run_without_submissions_raises():
    with pytest.raises(ValueError, match="no submissions"):
        make_server().run()


def test_duplicate_job_name_raises():
    server = make_server()
    server.submit(wc_job("twin"))
    with pytest.raises(ValueError, match="duplicate"):
        server.submit(wc_job("twin"))


def test_submit_after_run_raises():
    server = make_server()
    server.submit(wc_job("one"))
    server.run()
    with pytest.raises(RuntimeError, match="already running"):
        server.submit(wc_job("late"))


# -- observability ---------------------------------------------------------

def test_service_telemetry_counters_and_trace_rows():
    server = make_server(ServicePolicy(queue_capacity=1, max_running=1),
                         metrics_interval=1e-3)
    for i in range(3):
        server.submit(wc_job(f"j{i}", seed=i))
    result = server.run()
    metrics = {m.name: m
               for m in result.telemetry.registry.sorted_metrics()}
    assert metrics["glasswing_svc_submitted_total"].value == 3
    assert metrics["glasswing_svc_admitted_total"].value == 2
    assert metrics["glasswing_svc_rejected_total"].value == 1
    assert metrics["glasswing_svc_completed_total"].value == 2
    hist = metrics["glasswing_svc_job_latency_seconds"]
    assert hist.count == 2
    # the session timeline carries the service lifecycle spans and the
    # job-tagged forks of every per-job span
    cats = {s.category for s in result.timeline.spans}
    assert {"svc.submit", "svc.reject", "svc.queue", "svc.job"} <= cats
    jobs_tagged = {s.meta.get("job") for s in result.timeline.spans
                   if "job" in s.meta}
    assert {"j0", "j1"} <= jobs_tagged


def test_report_has_per_job_sections(tmp_path):
    server = make_server()
    requests = synthetic_trace(6, seed=3, nbytes_choices=(2048,),
                               kinds=("wordcount",))
    for request in requests:
        server.submit(request)
    result = server.run()
    report = result.to_report()
    assert report["schema"] == "glasswing-service-report/1"
    assert report["counters"]["completed"] == 6
    assert report["policy"]["arbiter"] == "fair-share"
    assert len(report["jobs"]) == 6
    for row in report["jobs"]:
        assert row["outcome"] == "completed"
        assert row["leaked_buffer_slots"] == 0
        assert row["latency"] >= row["queue_wait"] >= 0
    # JSON-serialisable end to end
    json.dumps(report)
    assert set(result.latency_percentiles()) == {"p50", "p95", "p99"}
