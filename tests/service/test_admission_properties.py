"""Property suite for the admission queue and the cross-job arbiter.

The queue and arbiter are pure bookkeeping (no simulator), so hypothesis
drives them directly with random op sequences against a reference model:

* the queue bound and per-tenant queued quota are never exceeded, and
  every offer is admitted exactly when the model says so;
* admitted entries leave the queue exactly once (take xor cancel);
* ``candidates`` preserves arrival order and never returns a tenant at
  its running quota;
* the arbiters implement their documented total orders, so
  FIFO-within-priority falls out of the seq tie-break.

The server-level properties (no starvation, deterministic completion
order) live in ``test_server_properties.py``.
"""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sched import ARBITER_NAMES, CrossJobArbiter
from repro.service import AdmissionQueue, ServicePolicy

TENANTS = ("alice", "bob", "carol")


def entry(name, tenant="alice", priority=1, seq=0, demand=1):
    return SimpleNamespace(name=name, tenant=tenant, priority=priority,
                           seq=seq, demand=demand)


entries_strategy = st.lists(
    st.tuples(st.sampled_from(TENANTS), st.integers(0, 2),
              st.integers(1, 1 << 16)),
    min_size=0, max_size=12).map(
        lambda rows: [entry(f"j{i}", tenant=t, priority=p, seq=i, demand=d)
                      for i, (t, p, d) in enumerate(rows)])

#: op stream: offer a new entry, or take/cancel the oldest queued one
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("offer"), st.sampled_from(TENANTS)),
        st.tuples(st.just("take"), st.none()),
        st.tuples(st.just("cancel"), st.none())),
    min_size=1, max_size=40)


@settings(max_examples=200, deadline=None)
@given(ops=ops_strategy, capacity=st.integers(0, 4),
       quota=st.one_of(st.none(), st.integers(1, 2)))
def test_queue_matches_reference_model(ops, capacity, quota):
    """Random offer/take/cancel streams against a dict reference model."""
    policy = ServicePolicy(queue_capacity=capacity,
                           max_per_tenant_queued=quota)
    queue = AdmissionQueue(policy)
    model = {}                       # name -> tenant, insertion ordered
    serial = 0
    for op, tenant in ops:
        if op == "offer":
            e = entry(f"j{serial}", tenant=tenant, seq=serial)
            serial += 1
            fits = len(model) < capacity and (
                quota is None
                or sum(1 for t in model.values() if t == tenant) < quota)
            assert queue.offer(e) is fits
            if fits:
                model[e.name] = tenant
        elif op == "take" and model:
            name = next(iter(model))
            taken = queue.take(name)
            assert taken.name == name
            del model[name]
        elif op == "cancel" and model:
            name = next(iter(model))
            assert queue.cancel(name) is True
            del model[name]
        # invariants after every op
        assert queue.depth == len(model) <= capacity
        assert [e.name for e in queue.candidates()] == list(model)
        if quota is not None:
            per_tenant = {}
            for t in model.values():
                per_tenant[t] = per_tenant.get(t, 0) + 1
            assert all(n <= quota for n in per_tenant.values())
    # conservation: every admitted entry left exactly one way or is
    # still waiting
    taken_or_waiting = queue.admitted - queue.cancelled - len(model)
    assert taken_or_waiting >= 0
    assert queue.offered == queue.admitted + queue.rejected
    assert queue.peak_depth <= capacity


@settings(max_examples=200, deadline=None)
@given(entries=entries_strategy,
       running=st.dictionaries(st.sampled_from(TENANTS),
                               st.integers(0, 3), max_size=3),
       quota=st.integers(1, 3))
def test_candidates_filter_running_quota(entries, running, quota):
    policy = ServicePolicy(queue_capacity=64,
                           max_per_tenant_running=quota)
    queue = AdmissionQueue(policy)
    for e in entries:
        assert queue.offer(e)
    eligible = queue.candidates(running)
    assert [e.name for e in eligible] == \
        [e.name for e in entries if running.get(e.tenant, 0) < quota]


def test_cancel_unknown_name_is_a_noop():
    queue = AdmissionQueue(ServicePolicy())
    assert queue.cancel("ghost") is False
    assert queue.cancelled == 0


def test_duplicate_name_rejected_loudly():
    queue = AdmissionQueue(ServicePolicy())
    assert queue.offer(entry("dup"))
    with pytest.raises(ValueError, match="duplicate"):
        queue.offer(entry("dup"))


@pytest.mark.parametrize("knob,value", [
    ("queue_capacity", -1), ("max_running", 0),
    ("max_per_tenant_running", 0), ("max_per_tenant_queued", -2)])
def test_policy_validation(knob, value):
    with pytest.raises(ValueError):
        ServicePolicy(**{knob: value})


# -- arbiter total orders --------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(entries=entries_strategy,
       running=st.dictionaries(st.sampled_from(TENANTS),
                               st.integers(0, 3), max_size=3))
def test_fair_share_total_order(entries, running):
    """fair-share: priority class, then least-running tenant, then
    arrival — so FIFO within (priority, tenant) is structural."""
    arbiter = CrossJobArbiter("fair-share")
    pick = arbiter.pick(entries, running)
    if not entries:
        assert pick is None
        return
    assert pick is min(entries, key=lambda e: (e.priority,
                                               running.get(e.tenant, 0),
                                               e.seq))


@settings(max_examples=200, deadline=None)
@given(entries=entries_strategy)
def test_lpt_prefers_largest_demand_within_priority(entries):
    arbiter = CrossJobArbiter("lpt")
    pick = arbiter.pick(entries)
    if not entries:
        assert pick is None
        return
    assert pick.priority == min(e.priority for e in entries)
    class_ = [e for e in entries if e.priority == pick.priority]
    assert pick.demand == max(e.demand for e in class_)


@settings(max_examples=100, deadline=None)
@given(entries=entries_strategy, name=st.sampled_from(ARBITER_NAMES))
def test_arbiters_are_fifo_within_priority_and_tenant(entries, name):
    """Both arbiters tie-break on seq: among entries of one tenant with
    equal priority and demand, the earliest arrival always wins."""
    for e in entries:
        e.tenant, e.demand = "alice", 7
    pick = CrossJobArbiter(name).pick(entries, {})
    if entries:
        class_ = [e for e in entries if e.priority == pick.priority]
        assert pick.seq == min(e.seq for e in class_)


def test_unknown_arbiter_rejected():
    with pytest.raises(ValueError, match="fair-share"):
        CrossJobArbiter("round-robin")
