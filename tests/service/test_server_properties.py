"""Server-level properties under random arrival traces.

Hypothesis drives whole :class:`JobServer` runs (tiny wordcount jobs so
each example stays cheap) across random queue capacities, slot counts
and priority mixes:

* **no starvation** — every admitted job eventually completes; only
  explicit rejections are left behind;
* **FIFO within (priority, tenant)** — under fair-share, two jobs of
  one tenant and one priority class always dispatch in arrival order;
* **determinism** — the same trace replayed on a fresh server produces
  the identical record table (admission decisions, dispatch times,
  completion times), which is the property the committed
  ``BENCH_service.json`` baseline and its 0%-drift gate stand on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import JobConfig
from repro.hw.presets import das4_cluster
from repro.service import JobServer, ServicePolicy, synthetic_trace

# no scheduler pin: the properties are server-level and must hold under
# whatever placement policy $REPRO_SCHEDULER selects (CI service-matrix)
CONFIG = JobConfig(chunk_size=4096, partitions_per_node=1)

traces = st.builds(
    synthetic_trace,
    n_jobs=st.integers(1, 8),
    seed=st.integers(0, 2 ** 16),
    mean_interarrival=st.sampled_from((5e-4, 2e-3, 1e-2)),
    nbytes_choices=st.just((1024, 2048)),
    kinds=st.just(("wordcount",)))

policies = st.builds(
    ServicePolicy,
    queue_capacity=st.integers(1, 6),
    max_running=st.integers(1, 3),
    max_per_tenant_running=st.one_of(st.none(), st.just(1)),
    arbiter=st.sampled_from(("fair-share", "lpt")))


def run_service(requests, policy):
    server = JobServer(das4_cluster(nodes=2), policy=policy, config=CONFIG)
    for request in requests:
        server.submit(request)
    return server.run()


def table(result):
    """The full observable record table, for exact replay comparison."""
    return [(r.name, r.outcome, r.started_at, r.finished_at,
             r.leaked_buffer_slots) for r in result.records]


@settings(max_examples=12, deadline=None)
@given(requests=traces, policy=policies)
def test_no_starvation_and_no_leaks(requests, policy):
    result = run_service(requests, policy)
    for record in result.records:
        assert record.outcome in ("completed", "rejected")
        if record.outcome == "completed":
            assert record.leaked_buffer_slots == 0
            assert record.finished_at >= record.started_at >= \
                record.submit_at
    assert result.counters["completed"] + result.counters["rejected"] == \
        len(requests)
    assert result.peak_running <= policy.max_running
    assert result.peak_queue_depth <= policy.queue_capacity


@settings(max_examples=10, deadline=None)
@given(requests=traces,
       capacity=st.integers(2, 6), max_running=st.integers(1, 2))
def test_fair_share_is_fifo_within_priority_and_tenant(requests, capacity,
                                                       max_running):
    policy = ServicePolicy(queue_capacity=capacity, max_running=max_running,
                           arbiter="fair-share")
    result = run_service(requests, policy)
    started = sorted((r for r in result.records if r.started_at is not None),
                     key=lambda r: (r.started_at, r.seq))
    for i, a in enumerate(started):
        for b in started[i + 1:]:
            if (a.tenant, a.priority) == (b.tenant, b.priority):
                assert a.seq < b.seq, (
                    f"{b.name} (seq {b.seq}) overtook {a.name} (seq "
                    f"{a.seq}) within tenant {a.tenant!r} priority "
                    f"{a.priority}")


@settings(max_examples=8, deadline=None)
@given(n_jobs=st.integers(2, 6), seed=st.integers(0, 2 ** 16),
       policy=policies)
def test_identical_seeds_replay_identically(n_jobs, seed, policy):
    def once():
        return run_service(
            synthetic_trace(n_jobs, seed=seed, nbytes_choices=(1024, 2048),
                            kinds=("wordcount",)),
            policy)
    first, second = once(), once()
    assert table(first) == table(second)
    assert first.makespan == second.makespan
    assert first.counters == second.counters
