"""Tests for the network transport model (store-and-forward phases)."""

import pytest

from repro.hw.specs import NetworkSpec
from repro.net import Network
from repro.simt import Simulator

FAST = NetworkSpec(name="test", bandwidth=100e6, latency=0.001)
# One 100 MB transfer: 1 s TX serialisation + 1 ms latency + 1 s RX.
ONE = 2.0 + 0.001


def test_single_transfer_time():
    sim = Simulator()
    net = Network(sim, FAST, 2)

    def proc(sim):
        yield from net.send(0, 1, 100_000_000)

    sim.process(proc(sim))
    sim.run()
    assert sim.now == pytest.approx(ONE)
    assert net.bytes_moved == 100_000_000
    assert len(net.transfers) == 1
    assert net.time_for(100_000_000) == pytest.approx(ONE)


def test_same_node_send_is_free():
    sim = Simulator()
    net = Network(sim, FAST, 2)

    def proc(sim):
        yield from net.send(1, 1, 10**9)
        yield sim.timeout(0)

    sim.process(proc(sim))
    sim.run()
    assert sim.now == 0.0
    assert net.bytes_moved == 0


def test_sender_nic_serializes_outgoing():
    sim = Simulator()
    net = Network(sim, FAST, 3)
    ends = []

    def proc(sim, dst):
        yield from net.send(0, dst, 100_000_000)
        ends.append(sim.now)

    sim.process(proc(sim, 1))
    sim.process(proc(sim, 2))
    sim.run()
    # TX phases serialise on node 0's NIC (1 s each); RX phases then run
    # on distinct receivers.
    assert sorted(ends)[0] == pytest.approx(ONE)
    assert sorted(ends)[1] == pytest.approx(ONE + 1.0)


def test_receiver_nic_serializes_incoming():
    """Incast: two senders into one receiver serialise on its RX NIC."""
    sim = Simulator()
    net = Network(sim, FAST, 3)
    ends = []

    def proc(sim, src):
        yield from net.send(src, 2, 100_000_000)
        ends.append(sim.now)

    sim.process(proc(sim, 0))
    sim.process(proc(sim, 1))
    sim.run()
    # Both TX phases overlap (distinct senders); RX delivery serialises.
    assert sorted(ends)[0] == pytest.approx(ONE)
    assert sorted(ends)[1] == pytest.approx(ONE + 1.0)


def test_disjoint_transfers_run_in_parallel():
    sim = Simulator()
    net = Network(sim, FAST, 4)
    ends = []

    def proc(sim, src, dst):
        yield from net.send(src, dst, 100_000_000)
        ends.append(sim.now)

    sim.process(proc(sim, 0, 1))
    sim.process(proc(sim, 2, 3))
    sim.run()
    assert ends == [pytest.approx(ONE), pytest.approx(ONE)]


def test_no_convoy_across_receivers():
    """A transfer queued at a busy receiver must not block its sender's
    NIC for other destinations (regression for the convoy collapse)."""
    sim = Simulator()
    net = Network(sim, FAST, 4)
    ends = {}

    def send(sim, name, src, dst, nbytes, delay=0.0):
        if delay:
            yield sim.timeout(delay)
        yield from net.send(src, dst, nbytes)
        ends[name] = sim.now

    # Background flow into node 1: TX [0, 1], RX delivery [1.001, 2.001].
    sim.process(send(sim, "bg", 2, 1, 100_000_000))
    # During the busy RX window node 0 sends a tiny message to node 1
    # (queues at rx1) and then one to node 3 — which must not be blocked.
    sim.process(send(sim, "to1", 0, 1, 1_000, delay=1.05))
    sim.process(send(sim, "to3", 0, 3, 1_000, delay=1.06))
    sim.run()
    assert ends["to3"] < 1.2
    assert ends["to1"] > 2.0  # it queued behind the background delivery


def test_concurrent_same_pair_transfers_serialize():
    sim = Simulator()
    net = Network(sim, FAST, 2)
    ends = []

    def proc(sim):
        yield from net.send(0, 1, 50_000_000)
        ends.append(sim.now)

    for _ in range(4):
        sim.process(proc(sim))
    sim.run()
    assert len(ends) == 4
    # 4 x 0.5 s TX serialised, then the last RX delivery 0.5 s later.
    assert max(ends) == pytest.approx(4 * 0.5 + 0.001 + 0.5)


def test_bisection_limits_aggregate():
    sim = Simulator()
    spec = NetworkSpec(name="thin", bandwidth=100e6, latency=0.0,
                       bisection_factor=0.5)
    net = Network(sim, spec, 4)  # fabric = 2 link slots
    ends = []

    def proc(sim, src, dst):
        yield from net.send(src, dst, 100_000_000)
        ends.append(sim.now)

    # Three disjoint pairs but only 2 fabric slots: one TX phase waits.
    sim.process(proc(sim, 0, 1))
    sim.process(proc(sim, 2, 3))
    sim.process(proc(sim, 1, 0))
    sim.run()
    assert sorted(ends)[-1] == pytest.approx(3.0)


def test_bad_node_ids_rejected():
    sim = Simulator()
    net = Network(sim, FAST, 2)

    def proc(sim):
        yield from net.send(0, 5, 10)

    sim.process(proc(sim))
    with pytest.raises(ValueError):
        sim.run()
