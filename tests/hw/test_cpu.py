"""Tests for the fluid processor-sharing CPU model."""

import pytest

from repro.hw.cpu import FluidCPU
from repro.simt import Simulator


def run_tasks(capacity, tasks):
    """Run (threads, thread_seconds) tasks; return dict name -> finish time."""
    sim = Simulator()
    cpu = FluidCPU(sim, capacity)
    finishes = {}

    def proc(sim, name, threads, work, delay):
        if delay:
            yield sim.timeout(delay)
        yield cpu.run(threads, work, tag=name)
        finishes[name] = sim.now

    for (name, threads, work, *rest) in tasks:
        delay = rest[0] if rest else 0.0
        sim.process(proc(sim, name, threads, work, delay))
    sim.run()
    return finishes


def test_single_task_full_speed():
    f = run_tasks(8, [("a", 4, 8.0)])
    # 8 thread-seconds over 4 threads on an idle 8-thread pool: 2 seconds.
    assert f["a"] == pytest.approx(2.0)


def test_task_rate_capped_by_own_threads():
    f = run_tasks(16, [("a", 2, 10.0)])
    # 2 threads can't use 16 cores: 5 seconds.
    assert f["a"] == pytest.approx(5.0)


def test_undersubscribed_tasks_do_not_interfere():
    f = run_tasks(8, [("a", 4, 4.0), ("b", 4, 8.0)])
    assert f["a"] == pytest.approx(1.0)
    assert f["b"] == pytest.approx(2.0)


def test_oversubscription_slows_everyone():
    # Two 8-thread tasks on an 8-thread pool: each runs at half speed.
    f = run_tasks(8, [("a", 8, 8.0), ("b", 8, 8.0)])
    assert f["a"] == pytest.approx(2.0)
    assert f["b"] == pytest.approx(2.0)


def test_proportional_share_under_oversubscription():
    # Demand = 12+4 = 16 on 8 threads: share factor 1/2.
    # a: rate 6 -> 12/6 = 2s ... but when b finishes rates change.
    # b: rate 2, work 2 -> finishes at t=1. Then a runs at 8 (capped by
    # capacity): remaining 12 - 6*1 = 6 -> 6/8 = 0.75 more seconds.
    f = run_tasks(8, [("a", 12, 12.0), ("b", 4, 2.0)])
    assert f["b"] == pytest.approx(1.0)
    assert f["a"] == pytest.approx(1.75)


def test_late_arrival_rebalances():
    # a alone for 1s at rate 8 (16 work -> 8 left). Then b arrives:
    # both 8-thread, share 4 each. b work 4 -> 1s... after that both at 4:
    # b finishes at t=2, a has 8-4=4 left, continues at 8 -> 0.5s.
    f = run_tasks(8, [("a", 8, 16.0), ("b", 8, 4.0, 1.0)])
    assert f["b"] == pytest.approx(2.0)
    assert f["a"] == pytest.approx(2.5)


def test_zero_work_completes_immediately():
    f = run_tasks(4, [("a", 2, 0.0)])
    assert f["a"] == 0.0


def test_invalid_arguments():
    sim = Simulator()
    cpu = FluidCPU(sim, 4)
    with pytest.raises(ValueError):
        cpu.run(0, 1.0)
    with pytest.raises(ValueError):
        cpu.run(1, -1.0)
    with pytest.raises(ValueError):
        FluidCPU(sim, 0)


def test_total_throughput_never_exceeds_capacity():
    """Aggregate completed work per elapsed time <= capacity."""
    cases = [
        (4, [("a", 4, 10.0), ("b", 4, 10.0), ("c", 2, 5.0)]),
        (8, [("x", 16, 8.0), ("y", 1, 1.0), ("z", 3, 9.0, 2.0)]),
    ]
    for capacity, tasks in cases:
        f = run_tasks(capacity, tasks)
        total_work = sum(t[2] for t in tasks)
        makespan = max(f.values())
        assert total_work <= capacity * makespan + 1e-6


def test_many_tasks_conservation():
    tasks = [(f"t{i}", (i % 3) + 1, 1.0 + 0.5 * i, 0.1 * i) for i in range(12)]
    f = run_tasks(6, tasks)
    assert len(f) == 12
    # Work conservation: the pool is busy from t=0 (task t0 arrives then),
    # so makespan >= total_work / capacity.
    total_work = sum(1.0 + 0.5 * i for i in range(12))
    assert max(f.values()) >= total_work / 6 - 1e-9


def test_demand_accounting():
    sim = Simulator()
    cpu = FluidCPU(sim, 8)

    def proc(sim):
        ev = cpu.run(3, 6.0)
        assert cpu.demand == 3
        assert cpu.active_tasks == 1
        yield ev
        assert cpu.demand == 0

    sim.process(proc(sim))
    sim.run()
