"""Tests for disk runtime, node/cluster construction and presets."""

import pytest

from repro.hw import Cluster, Disk, Node
from repro.hw.presets import (
    CPU_TYPE1,
    DISK_TYPE1,
    GBE,
    GTX480,
    QDR_IB,
    das4_cluster,
    type1_node,
    type2_node,
)
from repro.hw.specs import DeviceKind, DiskSpec, NodeSpec
from repro.simt import Simulator


def test_disk_sequential_read_time():
    sim = Simulator()
    disk = Disk(sim, DiskSpec(name="d", read_bw=100e6, write_bw=50e6,
                              seek_time=0.01))
    done = []

    def proc(sim):
        yield from disk.read(100_000_000)
        done.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert done[0] == pytest.approx(0.01 + 1.0)
    assert disk.bytes_read == 100_000_000


def test_disk_write_uses_write_bandwidth():
    sim = Simulator()
    disk = Disk(sim, DiskSpec(name="d", read_bw=100e6, write_bw=50e6,
                              seek_time=0.0))

    def proc(sim):
        yield from disk.write(50_000_000)

    sim.process(proc(sim))
    sim.run()
    assert sim.now == pytest.approx(1.0)
    assert disk.bytes_written == 50_000_000


def test_disk_concurrent_requests_serialize():
    sim = Simulator()
    disk = Disk(sim, DiskSpec(name="d", read_bw=100e6, write_bw=100e6,
                              seek_time=0.0))
    finishes = []

    def proc(sim):
        yield from disk.read(100_000_000)
        finishes.append(sim.now)

    sim.process(proc(sim))
    sim.process(proc(sim))
    sim.run()
    assert finishes == [pytest.approx(1.0), pytest.approx(2.0)]


def test_disk_streaming_skips_seek():
    sim = Simulator()
    disk = Disk(sim, DiskSpec(name="d", read_bw=100e6, write_bw=100e6,
                              seek_time=0.5))

    def proc(sim):
        yield from disk.read(100_000_000, stream="file-a")
        yield from disk.read(100_000_000, stream="file-a")

    sim.process(proc(sim))
    sim.run()
    # First read pays the seek, the contiguous follow-up does not.
    assert sim.now == pytest.approx(0.5 + 2.0)


def test_disk_interleaved_streams_pay_seeks():
    sim = Simulator()
    disk = Disk(sim, DiskSpec(name="d", read_bw=100e6, write_bw=100e6,
                              seek_time=0.5))

    def proc(sim):
        yield from disk.read(100_000_000, stream="a")
        yield from disk.read(100_000_000, stream="b")
        yield from disk.read(100_000_000, stream="a")

    sim.process(proc(sim))
    sim.run()
    assert sim.now == pytest.approx(3 * 0.5 + 3.0)


def test_disk_zero_bytes_is_free():
    sim = Simulator()
    disk = Disk(sim, DISK_TYPE1)

    def proc(sim):
        yield from disk.read(0)
        yield sim.timeout(0)

    sim.process(proc(sim))
    sim.run()
    assert sim.now == 0.0


def test_disk_rejects_negative():
    sim = Simulator()
    disk = Disk(sim, DISK_TYPE1)

    def proc(sim):
        yield from disk.read(-1)

    sim.process(proc(sim))
    with pytest.raises(ValueError):
        sim.run()


# ----------------------------------------------------------------- presets
def test_type1_node_shape():
    spec = type1_node(gpu=True)
    assert spec.cores == 8
    assert spec.hw_threads == 16
    assert spec.has_device(DeviceKind.GPU)
    assert spec.device(DeviceKind.GPU).name == "NVIDIA GTX480"
    assert spec.cpu_device.unified_memory


def test_type1_node_without_gpu():
    spec = type1_node()
    assert not spec.has_device(DeviceKind.GPU)
    with pytest.raises(KeyError):
        spec.device(DeviceKind.GPU)


def test_type2_node_has_k20m():
    spec = type2_node()
    assert spec.device(DeviceKind.GPU).name == "NVIDIA K20m"
    assert spec.hw_threads == 24


def test_gpu_speed_ratio_calibration():
    """GTX480 ~20x CPU on compute-bound kernels (paper: KM single-node)."""
    ratio = GTX480.gflops / CPU_TYPE1.gflops
    assert 15 <= ratio <= 25


def test_node_spec_requires_cpu_device():
    with pytest.raises(ValueError):
        NodeSpec(name="bad", cores=4, hw_threads=8, ram=1, disk=DISK_TYPE1,
                 devices=(GTX480,))


def test_cluster_build():
    spec = das4_cluster(nodes=4, gpu=True)
    assert len(spec) == 4
    sim = Simulator()
    cluster = Cluster(sim, spec)
    assert len(cluster) == 4
    assert cluster[2].node_id == 2
    assert cluster[0].cpu.capacity == 16
    assert {n.node_id for n in cluster} == {0, 1, 2, 3}


def test_cluster_network_presets():
    assert QDR_IB.bandwidth > GBE.bandwidth * 5
    assert QDR_IB.latency < GBE.latency


def test_das4_rejects_bad_args():
    with pytest.raises(ValueError):
        das4_cluster(nodes=0)
    with pytest.raises(ValueError):
        das4_cluster(nodes=2, node_type=3)


def test_node_host_work_charges_cpu():
    sim = Simulator()
    node = Node(sim, type1_node(), 0)

    def proc(sim):
        yield node.host_work(16, 16.0)

    sim.process(proc(sim))
    sim.run()
    assert sim.now == pytest.approx(1.0)
