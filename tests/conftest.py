"""Shared fixtures and comparison helpers for the test suite."""

import numpy as np
import pytest

from repro.baselines.reference import canonical_output


def _values_close(a, b, rtol=1e-4):
    """Tolerant value comparison: floats (scalars/tuples/bytes-encoded
    float32 blobs) may differ in the last bits across engines because
    reduction order differs."""
    if isinstance(a, float) or isinstance(b, float):
        return np.isclose(a, b, rtol=rtol)
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(
            _values_close(x, y, rtol) for x, y in zip(a, b))
    if isinstance(a, bytes) and isinstance(b, bytes) and len(a) == len(b) \
            and len(a) % 4 == 0 and a != b:
        fa = np.frombuffer(a, dtype=np.float32)
        fb = np.frombuffer(b, dtype=np.float32)
        return np.allclose(fa, fb, rtol=rtol)
    return a == b


def assert_outputs_match(got_pairs, ref_pairs, rtol=1e-4):
    """Assert two engines produced equivalent output (keys exact, values
    numerically close)."""
    got = canonical_output(list(got_pairs))
    ref = canonical_output(list(ref_pairs))
    assert len(got) == len(ref), f"{len(got)} pairs vs {len(ref)}"
    for (gk, gv), (rk, rv) in zip(got, ref):
        assert gk == rk, f"key mismatch: {gk!r} != {rk!r}"
        assert _values_close(gv, rv, rtol), f"value mismatch for {gk!r}"


@pytest.fixture
def outputs_match():
    return assert_outputs_match
