"""Byte-accurate accounting of the cache-aside storage wrapper."""

import pytest

from repro.core.io import StorageBackend
from repro.storage.cache import CacheAsideBackend


class FakeBase(StorageBackend):
    """In-memory backend that records every read it actually serves."""

    def __init__(self):
        self.files = {}
        self.reads = []
        self.purges = 0

    def read(self, node_id, path, offset, length):
        self.reads.append((node_id, path, offset, length))
        return self.files[path][offset:offset + length]
        yield  # pragma: no cover - generator protocol only

    def write_chunk(self, node_id, nbytes, replication):
        return None
        yield  # pragma: no cover - generator protocol only

    def size(self, path):
        return len(self.files[path])

    def locations(self, path):
        return None

    def exists(self, path):
        return path in self.files

    def install(self, path, data):
        self.files[path] = data

    def remove(self, path):
        del self.files[path]

    def purge_caches(self):
        self.purges += 1


def drive(gen):
    """Run a storage generator to completion, returning its value."""
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


@pytest.fixture
def backend():
    base = FakeBase()
    base.install("pinned", bytes(range(256)) * 4)
    base.install("mutable", b"m" * 512)
    cache = CacheAsideBackend(base)
    cache.pin("pinned")
    return base, cache


def test_miss_then_hit(backend):
    base, cache = backend
    first = drive(cache.read(0, "pinned", 0, 128))
    second = drive(cache.read(0, "pinned", 0, 128))
    assert first == second == base.files["pinned"][:128]
    assert base.reads == [(0, "pinned", 0, 128)]  # hit skipped the base
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.hit_bytes == cache.miss_bytes == 128


def test_unpinned_paths_never_cache(backend):
    base, cache = backend
    drive(cache.read(0, "mutable", 0, 64))
    drive(cache.read(0, "mutable", 0, 64))
    assert len(base.reads) == 2
    assert cache.hits == 0 and cache.cached_bytes == 0


def test_cache_key_includes_reading_node(backend):
    base, cache = backend
    drive(cache.read(0, "pinned", 0, 64))
    drive(cache.read(1, "pinned", 0, 64))
    # Node 1 has not paid the transfer cost; both reads reach the base.
    assert len(base.reads) == 2 and cache.hits == 0
    drive(cache.read(1, "pinned", 0, 64))
    assert cache.hits == 1


def test_install_invalidates_cached_ranges(backend):
    base, cache = backend
    drive(cache.read(0, "pinned", 0, 64))
    cache.install("pinned", b"new content" * 100)
    data = drive(cache.read(0, "pinned", 0, 64))
    assert data == (b"new content" * 100)[:64]
    assert cache.misses == 2  # stale range was dropped


def test_remove_invalidates(backend):
    base, cache = backend
    drive(cache.read(0, "pinned", 0, 64))
    cache.remove("pinned")
    assert not cache.exists("pinned")
    assert cache.cached_bytes == 0


def test_explicit_invalidate(backend):
    base, cache = backend
    drive(cache.read(0, "pinned", 0, 64))
    drive(cache.read(0, "pinned", 64, 64))
    assert cache.cached_bytes == 128
    cache.invalidate("pinned")
    assert cache.cached_bytes == 0


def test_lru_eviction_respects_capacity():
    base = FakeBase()
    base.install("p", bytes(300))
    cache = CacheAsideBackend(base, capacity_bytes=100)
    cache.pin("p")
    drive(cache.read(0, "p", 0, 60))
    drive(cache.read(0, "p", 60, 60))    # evicts the first range
    assert cache.cached_bytes == 60
    assert cache.evictions == 1
    drive(cache.read(0, "p", 0, 60))     # the evicted range misses again
    assert cache.misses == 3


def test_oversized_range_never_caches():
    base = FakeBase()
    base.install("p", bytes(300))
    cache = CacheAsideBackend(base, capacity_bytes=100)
    cache.pin("p")
    drive(cache.read(0, "p", 0, 200))
    assert cache.cached_bytes == 0 and cache.evictions == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        CacheAsideBackend(FakeBase(), capacity_bytes=0)


def test_purge_caches_keeps_cache_aside_entries(backend):
    base, cache = backend
    drive(cache.read(0, "pinned", 0, 64))
    cache.purge_caches()
    assert base.purges == 1
    assert cache.cached_bytes == 64  # application buffer, not page cache


def test_stats_shape(backend):
    base, cache = backend
    drive(cache.read(0, "pinned", 0, 64))
    drive(cache.read(0, "pinned", 0, 64))
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["hit_rate_bytes"] == pytest.approx(0.5)
    assert stats["pinned_paths"] == ["pinned"]
    assert stats["cached_bytes"] == 64
