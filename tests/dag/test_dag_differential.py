"""DAG engine vs naive re-submission: bit-identical output, faster time."""

import numpy as np
import pytest

from repro.apps.datagen import kmeans_centers, kmeans_points
from repro.apps.drivers import kmeans_iterate
from repro.core import JobConfig
from repro.hw.presets import das4_cluster

ROUNDS = 4


@pytest.fixture(scope="module")
def runs():
    points = kmeans_points(6_000, 4, seed=21)
    centers = kmeans_centers(6, 4, seed=22)
    config = JobConfig(chunk_size=16 * 1024, storage="dfs",
                       scheduler="static-affinity")
    spec = das4_cluster(nodes=4)
    dag = kmeans_iterate({"points": points}, centers, spec, config,
                         max_iterations=ROUNDS, tolerance=0.0, engine="dag")
    naive = kmeans_iterate({"points": points}, centers, spec, config,
                           max_iterations=ROUNDS, tolerance=0.0,
                           engine="resubmit")
    return dag, naive


def test_centers_bit_identical(runs):
    dag, naive = runs
    assert dag.centers.tobytes() == naive.centers.tobytes()
    assert dag.centers.dtype == np.float32


def test_trajectories_identical(runs):
    dag, naive = runs
    assert dag.shifts == naive.shifts
    assert dag.orphaned == naive.orphaned
    assert dag.iterations == naive.iterations == ROUNDS


def test_dag_engine_is_faster(runs):
    dag, naive = runs
    assert dag.total_time < naive.total_time
    assert dag.cache["hit_bytes"] > 0
    assert naive.cache == {}


def test_per_round_elapsed_drops_after_warmup(runs):
    dag, _ = runs
    elapsed = [r.job_time for r in dag.results]
    assert all(e > 0 for e in elapsed)
    assert max(elapsed[1:]) < elapsed[0]


def test_repeated_dag_sessions_reproduce():
    points = kmeans_points(2_000, 4, seed=23)
    centers = kmeans_centers(4, 4, seed=24)
    spec = das4_cluster(nodes=2)
    config = JobConfig(chunk_size=16 * 1024, storage="local")
    a = kmeans_iterate({"points": points}, centers, spec, config,
                       max_iterations=3, tolerance=0.0, engine="dag")
    b = kmeans_iterate({"points": points}, centers, spec, config,
                       max_iterations=3, tolerance=0.0, engine="dag")
    assert a.centers.tobytes() == b.centers.tobytes()
    assert a.shifts == b.shifts
