"""The two multi-round MRC apps against their dense references."""

import numpy as np
import pytest

from repro.apps.datagen import pagerank_edges, prefix_values
from repro.apps.pagerank import (PageRankContribApp, pagerank_iterate,
                                 pagerank_reference)
from repro.apps.prefixsum import PrefixBlockSumApp, PrefixScanApp, prefix_sums
from repro.core import JobConfig
from repro.dag import DagRunner
from repro.hw.presets import das4_cluster


def config():
    return JobConfig(chunk_size=8 * 1024, storage="local",
                     scheduler="static-affinity")


def reference_scan(values):
    rows = np.frombuffer(values, dtype="<i8").reshape(-1, 2)
    return np.cumsum(rows[np.argsort(rows[:, 0], kind="stable"), 1])


def test_prefix_sums_bit_exact():
    values = prefix_values(5_000, seed=3)
    run = prefix_sums(values, das4_cluster(nodes=2), config=config(),
                      block_size=512)
    assert (run.prefix == reference_scan(values)).all()
    assert run.total_time > 0


def test_prefix_sums_block_sums_published():
    values = prefix_values(2_000, seed=4)
    run = prefix_sums(values, das4_cluster(nodes=2), config=config(),
                      block_size=256)
    rows = np.frombuffer(values, dtype="<i8").reshape(-1, 2)
    for block, total in run.block_sums.items():
        mask = rows[:, 0] // 256 == block
        assert total == int(rows[mask, 1].sum())


def test_prefix_sums_rejects_ragged_blob():
    with pytest.raises(ValueError, match="multiple of 16"):
        prefix_sums(b"12345", das4_cluster(nodes=1))


def test_prefix_apps_validate_block_size():
    with pytest.raises(ValueError):
        PrefixBlockSumApp(0)
    with pytest.raises(ValueError):
        PrefixScanApp({}, 0)


def test_prefix_sums_shared_runner_reuses_cache():
    values = prefix_values(2_000, seed=6)
    runner = DagRunner(das4_cluster(nodes=2), config=config())
    first = prefix_sums(values, das4_cluster(nodes=2), runner=runner)
    second = prefix_sums(values, das4_cluster(nodes=2), runner=runner)
    assert (first.prefix == second.prefix).all()
    stats = runner.cache_stats()
    assert stats["hit_bytes"] > 0
    # The second DAG's stages re-read the identical pinned input: the
    # only misses are the two stage-one reads of round one.
    assert second.dag_result.stage_runs[0].cache_miss_bytes == 0


def test_pagerank_matches_dense_power_iteration():
    edges = pagerank_edges(400, 2_400, seed=9)
    run = pagerank_iterate(edges, 400, das4_cluster(nodes=2),
                           config=config(), rounds=4)
    want = pagerank_reference(edges, 400, rounds=4)
    assert np.max(np.abs(run.ranks - want)) < 1e-9
    assert np.isclose(run.ranks.sum(), 1.0, atol=1e-6)
    assert len(run.deltas) == 4
    assert run.deltas == sorted(run.deltas, reverse=True)  # contraction


def test_pagerank_degree_job_runs_once():
    edges = pagerank_edges(200, 1_000, seed=10)
    run = pagerank_iterate(edges, 200, das4_cluster(nodes=2),
                           config=config(), rounds=3)
    labels = [r.label for r in run.runner.stage_runs]
    assert labels == ["degrees@r1", "contrib@r2", "contrib@r3", "contrib@r4"]
    rows = np.frombuffer(edges, dtype="<i4").reshape(-1, 2)
    for vertex, degree in run.degrees.items():
        assert degree == int((rows[:, 0] == vertex).sum())


def test_pagerank_validates_inputs():
    edges = pagerank_edges(50, 200, seed=11)
    with pytest.raises(ValueError, match="rounds"):
        pagerank_iterate(edges, 50, das4_cluster(nodes=1), rounds=0)
    with pytest.raises(ValueError, match="multiple of 8"):
        pagerank_iterate(b"123", 50, das4_cluster(nodes=1))


def test_contrib_app_validates_broadcast_state():
    with pytest.raises(ValueError, match="1-D"):
        PageRankContribApp(np.zeros((2, 2)), {})
    with pytest.raises(ValueError, match="non-empty"):
        PageRankContribApp(np.zeros(0), {})
    with pytest.raises(ValueError, match="damping"):
        PageRankContribApp(np.ones(4) / 4, {}, damping=1.5)


def test_datagen_generators_validate():
    with pytest.raises(ValueError, match="out-edge"):
        pagerank_edges(100, 50)
    rows = np.frombuffer(prefix_values(64, seed=1),
                         dtype="<i8").reshape(-1, 2)
    assert sorted(rows[:, 0].tolist()) == list(range(64))
    edges = np.frombuffer(pagerank_edges(32, 64, seed=2),
                          dtype="<i4").reshape(-1, 2)
    assert set(edges[:, 0].tolist()) == set(range(32))  # every src covered
