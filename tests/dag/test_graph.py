"""Structural validation and topological ordering of :class:`repro.dag.DAG`."""

import pytest

from repro.apps import WordCountApp
from repro.dag import DAG, DagError, StageOutput


def wc():
    return WordCountApp()


def encode(pairs):
    return b"".join(repr(p).encode() for p in pairs)


def test_empty_dag_rejected():
    with pytest.raises(DagError, match="no stages"):
        DAG("empty").toposort()


def test_duplicate_dataset_rejected():
    dag = DAG()
    dag.add_input("a", b"x")
    with pytest.raises(DagError, match="duplicate dataset"):
        dag.add_input("a", b"y")


def test_duplicate_stage_rejected():
    dag = DAG()
    dag.add_input("a", b"x")
    dag.add_stage("s", wc(), ["a"])
    with pytest.raises(DagError, match="duplicate stage"):
        dag.add_stage("s", wc(), ["a"])


def test_unknown_dataset_reference():
    dag = DAG()
    dag.add_stage("s", wc(), ["missing"])
    with pytest.raises(DagError, match="unknown dataset 'missing'"):
        dag.toposort()


def test_unknown_stage_join():
    dag = DAG()
    dag.add_stage("s", wc(), [StageOutput("ghost", encode)])
    with pytest.raises(DagError, match="unknown stage 'ghost'"):
        dag.toposort()


def test_join_path_colliding_with_dataset():
    dag = DAG()
    dag.add_input("a", b"x")
    dag.add_input("up.out", b"y")
    dag.add_stage("up", wc(), ["a"])
    dag.add_stage("down", wc(), [StageOutput("up", encode)])
    with pytest.raises(DagError, match="collides with a dataset"):
        dag.toposort()


def test_unknown_after_reference():
    dag = DAG()
    dag.add_input("a", b"x")
    dag.add_stage("s", wc(), ["a"], after=["ghost"])
    with pytest.raises(DagError, match="ordered after unknown"):
        dag.toposort()


def test_self_dependency_rejected():
    dag = DAG()
    dag.add_input("a", b"x")
    dag.add_stage("s", wc(), ["a"], after=["s"])
    with pytest.raises(DagError, match="depends on itself"):
        dag.toposort()


def test_cycle_detected():
    dag = DAG()
    dag.add_input("a", b"x")
    dag.add_stage("s1", wc(), ["a"], after=["s2"])
    dag.add_stage("s2", wc(), ["a"], after=["s1"])
    with pytest.raises(DagError, match=r"cycle through stages \['s1', 's2'\]"):
        dag.toposort()


def test_topological_order_follows_data_edges():
    dag = DAG()
    dag.add_input("a", b"x")
    # Declared downstream-first: the data edge must still win.
    dag.add_stage("down", wc(), [StageOutput("up", encode)])
    dag.add_stage("up", wc(), ["a"])
    assert [s.name for s in dag.toposort()] == ["up", "down"]


def test_ties_break_by_declaration_order():
    dag = DAG()
    dag.add_input("a", b"x")
    dag.add_stage("z", wc(), ["a"])
    dag.add_stage("m", wc(), ["a"])
    dag.add_stage("b", wc(), ["a"], after=["z"])
    assert [s.name for s in dag.toposort()] == ["z", "m", "b"]


def test_stage_requires_inputs():
    with pytest.raises(DagError, match="no inputs"):
        DAG().add_stage("s", wc(), [])


def test_stage_rejects_bad_input_reference():
    with pytest.raises(DagError, match="dataset paths or"):
        DAG().add_stage("s", wc(), [42])


def test_stage_rejects_non_app():
    with pytest.raises(DagError, match="MapReduceApp or a"):
        DAG().add_stage("s", "not-an-app", ["a"])


def test_factory_must_return_an_app():
    dag = DAG()
    dag.add_input("a", b"x")
    stage = dag.add_stage("s", lambda broadcast: 42, ["a"])
    with pytest.raises(DagError, match="returned int"):
        stage.make_app({})


def test_dataset_path_must_be_nonempty():
    with pytest.raises(DagError, match="non-empty"):
        DAG().add_input("", b"x")


def test_stage_output_defaults_path():
    ref = StageOutput("up", encode)
    assert ref.path == "up.out"
    assert StageOutput("up", encode, path="custom.bin").path == "custom.bin"
