"""Fault matrix for the multi-round DAG apps: {prefixsum, pagerank} ×
{map crash, reduce crash, node crash, straggler+speculation}.

Every cell asserts the repo's headline fault guarantee extended to DAGs:
a faulted round produces the same output as the fault-free golden run.
Prefix sums are all-integer, so equality is exact; PageRank reduces sort
values before the float sums, so its per-round output is deterministic
too, but the comparison stays tolerant in case re-execution regroups
combiner batches.
"""

import numpy as np
import pytest

from repro.apps.datagen import pagerank_edges, prefix_values
from repro.apps.pagerank import pagerank_iterate
from repro.apps.prefixsum import PrefixBlockSumApp, PrefixScanApp, \
    exclusive_offsets, prefix_sums
from repro.core import JobConfig
from repro.core.faults import FaultPlan, NodeCrash
from repro.dag import DAG, DagRunner
from repro.hw.presets import das4_cluster

NODES = 4


def config(speculative=False):
    return JobConfig(chunk_size=8 * 1024, storage="dfs",
                     input_replication=NODES, scheduler="static-affinity",
                     speculative_execution=speculative)


def make_plan(fault, golden_map_time):
    """A fresh plan per stage: FaultPlan tracks injected attempts, so a
    shared instance would fire only in the first stage that hits it."""
    if fault == "map-crash":
        return FaultPlan(map_failures={0: 1, 1: 1})
    if fault == "reduce-crash":
        # Cover every partition: which ones hold keys depends on the app.
        return FaultPlan(reduce_failures={p: 1 for p in range(NODES)})
    if fault == "node-crash":
        return FaultPlan(
            node_crashes=(NodeCrash(node=2, at=golden_map_time / 2),))
    return FaultPlan(stragglers={0: 6.0})


class PrefixCase:
    VALUES = prefix_values(3_000, seed=41)
    BLOCK = 512

    @staticmethod
    def run(faults=None, speculative=False):
        runner = DagRunner(das4_cluster(nodes=NODES),
                           config=config(speculative))
        run = prefix_sums(PrefixCase.VALUES, das4_cluster(nodes=NODES),
                          runner=runner)
        if faults is None:
            return run
        # Replay the same two-stage DAG with the fault plan on both
        # stages, on a fresh runner (fault-free golden stays golden).
        runner = DagRunner(das4_cluster(nodes=NODES),
                           config=config(speculative))
        dag = DAG("prefix-sums")
        dag.add_input("prefix-values.bin", PrefixCase.VALUES)
        dag.add_stage("blocksum", PrefixBlockSumApp(PrefixCase.BLOCK),
                      ["prefix-values.bin"],
                      publish=lambda pairs: {"block_sums": dict(pairs)})
        dag.add_stage(
            "scan",
            lambda b: PrefixScanApp(exclusive_offsets(b["block_sums"]),
                                    PrefixCase.BLOCK),
            ["prefix-values.bin"], after=["blocksum"])
        result = runner.run(dag, faults=faults)
        prefix = np.zeros(len(PrefixCase.VALUES) // 16, dtype=np.int64)
        for index, total in result.outputs["scan"]:
            prefix[index] = total
        return prefix, result

    @staticmethod
    def golden():
        run = prefix_sums(PrefixCase.VALUES, das4_cluster(nodes=NODES),
                          config=config(), block_size=PrefixCase.BLOCK)
        return run


class PageRankCase:
    EDGES = pagerank_edges(300, 1_800, seed=43)
    N = 300
    ROUNDS = 2

    @staticmethod
    def golden():
        return pagerank_iterate(PageRankCase.EDGES, PageRankCase.N,
                                das4_cluster(nodes=NODES), config=config(),
                                rounds=PageRankCase.ROUNDS)


@pytest.fixture(scope="module")
def prefix_golden():
    return PrefixCase.golden()


@pytest.fixture(scope="module")
def pagerank_golden():
    return PageRankCase.golden()


@pytest.mark.parametrize("fault", ["map-crash", "reduce-crash",
                                   "node-crash", "straggler"])
def test_prefixsum_output_survives_faults(fault, prefix_golden):
    golden_map = prefix_golden.dag_result.stage_runs[0].result.map_time
    faults = {name: make_plan(fault, golden_map)
              for name in ("blocksum", "scan")}
    prefix, result = PrefixCase.run(faults=faults,
                                    speculative=(fault == "straggler"))
    assert (prefix == prefix_golden.prefix).all()
    if fault in ("map-crash", "reduce-crash"):
        assert sum(r.result.stats["task_failures"]
                   for r in result.stage_runs) > 0
        for run in result.stage_runs:
            assert run.result.stats["leaked_buffer_slots"] == 0
    if fault == "node-crash":
        assert result.stage_runs[0].result.stats["dead_nodes"] == [2]


@pytest.mark.parametrize("fault", ["map-crash", "reduce-crash",
                                   "node-crash", "straggler"])
def test_pagerank_output_survives_faults(fault, pagerank_golden):
    golden_map = pagerank_golden.runner.stage_runs[0].result.map_time
    runner = DagRunner(das4_cluster(nodes=NODES),
                       config=config(fault == "straggler"))
    # Rebuild pagerank's two DAGs by hand so every round carries faults.
    from repro.apps.pagerank import PageRankContribApp, PageRankDegreeApp
    degree_dag = DAG("pagerank-degrees")
    degree_dag.add_input("pagerank-edges.bin", PageRankCase.EDGES)
    degree_dag.add_stage("degrees", PageRankDegreeApp(),
                         ["pagerank-edges.bin"],
                         publish=lambda pairs: {"degrees": dict(pairs)})
    rank_dag = DAG("pagerank")
    rank_dag.add_input("pagerank-edges.bin", PageRankCase.EDGES)
    rank_dag.add_stage(
        "contrib",
        lambda b: PageRankContribApp(b["ranks"], b["degrees"]),
        ["pagerank-edges.bin"],
        publish=lambda pairs: {"contribs": dict(pairs)})

    degrees = runner.run(
        degree_dag,
        faults={"degrees": make_plan(fault, golden_map)}).broadcast["degrees"]
    assert degrees == pagerank_golden.degrees
    n = PageRankCase.N
    ranks = np.full(n, 1.0 / n)
    for _ in range(PageRankCase.ROUNDS):
        res = runner.run(rank_dag,
                         broadcast={"ranks": ranks, "degrees": degrees},
                         faults={"contrib": make_plan(fault, golden_map)})
        new_ranks = np.full(n, 0.15 / n)
        for vertex, rank in res.broadcast["contribs"].items():
            new_ranks[vertex] = rank
        ranks = new_ranks
    assert np.allclose(ranks, pagerank_golden.ranks, rtol=0, atol=1e-12)
