"""DagRunner semantics: shared session, broadcast, joins, caching, traces."""

import numpy as np
import pytest

from repro.apps.datagen import prefix_values
from repro.apps.prefixsum import (RECORD_SIZE, PrefixBlockSumApp,
                                  exclusive_offsets)
from repro.core import JobConfig
from repro.dag import DAG, DagError, DagRunner, StageOutput
from repro.hw.presets import das4_cluster

N = 2_048
BLOCK = 256


def config(storage="local"):
    return JobConfig(chunk_size=8 * 1024, storage=storage,
                     scheduler="static-affinity")


def values_blob():
    return prefix_values(N, seed=5)


def rows():
    return np.frombuffer(values_blob(), dtype="<i8").reshape(-1, 2)


def block_sum_dag():
    dag = DAG("sums")
    dag.add_input("values.bin", values_blob())
    dag.add_stage("blocksum", PrefixBlockSumApp(BLOCK), ["values.bin"],
                  publish=lambda pairs: {"block_sums": dict(pairs)})
    return dag


def expected_block_sums():
    data = rows()
    out = {}
    for block, value in zip((data[:, 0] // BLOCK).tolist(),
                            data[:, 1].tolist()):
        out[block] = out.get(block, 0) + value
    return out


def test_single_stage_round_with_publish():
    runner = DagRunner(das4_cluster(nodes=2), config=config())
    result = runner.run(block_sum_dag())
    assert result.round == 1
    assert result.broadcast["block_sums"] == expected_block_sums()
    assert [r.label for r in result.stage_runs] == ["blocksum@r1"]
    assert result.total_time > 0


def test_stage_output_fan_in_join():
    """A downstream stage consumes the upstream's reduced output file."""
    coarse = 4  # coarse block = 4 fine blocks

    def encode(pairs):
        return np.array(pairs, dtype="<i8").tobytes()

    dag = DAG("two-level")
    dag.add_input("values.bin", values_blob())
    dag.add_stage("fine", PrefixBlockSumApp(BLOCK), ["values.bin"])
    dag.add_stage("coarse", PrefixBlockSumApp(coarse),
                  [StageOutput("fine", encode)])
    runner = DagRunner(das4_cluster(nodes=2), config=config())
    result = runner.run(dag)

    fine = expected_block_sums()
    want = {}
    for block, total in fine.items():
        want[block // coarse] = want.get(block // coarse, 0) + total
    assert dict(result.outputs["coarse"]) == want
    # The join file exists on the backend but is never pinned.
    assert runner.backend.exists("fine.out")
    assert not runner.backend.pinned("fine.out")
    assert runner.backend.pinned("values.bin")


def test_second_round_hits_the_cache():
    runner = DagRunner(das4_cluster(nodes=2), config=config())
    dag = block_sum_dag()
    first = runner.run(dag)
    second = runner.run(dag)
    assert second.round == 2
    assert first.outputs == second.outputs
    r1, r2 = runner.stage_runs
    assert r1.cache_hit_bytes == 0 and r1.cache_miss_bytes > 0
    assert r2.cache_hit_bytes == r1.cache_miss_bytes
    assert r2.cache_miss_bytes == 0
    # Cached reads cost zero simulated time, so round two is faster.
    assert r2.elapsed < r1.elapsed


def test_content_change_reinstalls_and_invalidates():
    runner = DagRunner(das4_cluster(nodes=2), config=config())
    runner.run(block_sum_dag())

    changed = DAG("sums")
    data = rows().copy()
    data[:, 1] += 1
    changed.add_input("values.bin", data.tobytes())
    changed.add_stage("blocksum", PrefixBlockSumApp(BLOCK), ["values.bin"],
                      publish=lambda pairs: {"block_sums": dict(pairs)})
    result = runner.run(changed)
    want = {b: s + N // len(expected_block_sums())
            for b, s in expected_block_sums().items()}
    assert result.broadcast["block_sums"] == want
    # New content means the second round misses again.
    assert runner.stage_runs[1].cache_hit_bytes == 0
    assert runner.stage_runs[1].cache_miss_bytes > 0


def test_broadcast_seed_reaches_factories():
    seen = {}

    def factory(broadcast):
        seen.update(broadcast)
        return PrefixBlockSumApp(BLOCK)

    dag = DAG("probe")
    dag.add_input("values.bin", values_blob())
    dag.add_stage("probe", factory, ["values.bin"])
    runner = DagRunner(das4_cluster(nodes=2), config=config())
    result = runner.run(dag, broadcast={"round_state": 42})
    assert seen["round_state"] == 42
    assert result.broadcast["round_state"] == 42


def test_publish_must_return_dict():
    dag = DAG("bad")
    dag.add_input("values.bin", values_blob())
    dag.add_stage("s", PrefixBlockSumApp(BLOCK), ["values.bin"],
                  publish=lambda pairs: ["not", "a", "dict"])
    runner = DagRunner(das4_cluster(nodes=2), config=config())
    with pytest.raises(DagError, match="publish must return a"):
        runner.run(dag)


def test_faults_reject_unknown_stage():
    from repro.core.faults import FaultPlan
    runner = DagRunner(das4_cluster(nodes=2), config=config())
    with pytest.raises(DagError, match="unknown stages \\['ghost'\\]"):
        runner.run(block_sum_dag(), faults={"ghost": FaultPlan()})


def test_per_round_trace_lanes():
    runner = DagRunner(das4_cluster(nodes=2), config=config())
    dag = block_sum_dag()
    runner.run(dag)
    runner.run(dag)
    stage_spans = [s for s in runner.session.timeline.spans
                   if s.category == "dag.stage"]
    assert [s.name for s in stage_spans] == ["blocksum@r1", "blocksum@r2"]
    # Each round's job spans land in its own labelled lane.
    jobs = {s.meta.get("job") for s in runner.session.timeline.spans
            if s.meta.get("job")}
    assert {"blocksum@r1", "blocksum@r2"} <= jobs


def test_report_sections_per_round():
    runner = DagRunner(das4_cluster(nodes=2), config=config())
    result = runner.run(block_sum_dag())
    report = result.to_report()
    assert report["schema"] == "glasswing-dag-report/1"
    assert report["dag"] == "sums"
    (section,) = report["rounds"]
    assert section["stage"] == "blocksum"
    assert section["round"] == 1
    assert section["elapsed"] == pytest.approx(result.total_time)
    assert {"map_time", "merge_delay", "reduce_time", "network_bytes",
            "cache_hit_bytes", "cache_miss_bytes"} <= set(section)
    assert report["cache"]["hit_bytes"] == 0  # first round is all misses


def test_dfs_backend_rounds_account_network_per_round():
    runner = DagRunner(das4_cluster(nodes=4), config=config(storage="dfs"))
    dag = block_sum_dag()
    first = runner.run(dag)
    second = runner.run(dag)
    # Shuffle bytes are per-round (per-job meters), not cumulative.
    n1 = first.stage_runs[0].result.stats["network_bytes"]
    n2 = second.stage_runs[0].result.stats["network_bytes"]
    assert n1 > 0
    assert n2 <= n1


def test_runner_total_time_accumulates():
    runner = DagRunner(das4_cluster(nodes=2), config=config())
    dag = block_sum_dag()
    a = runner.run(dag).total_time
    b = runner.run(dag).total_time
    assert runner.total_time == pytest.approx(a + b)
    runner.close()  # telemetry stop is a no-op without metrics; no crash
