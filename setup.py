"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP-517 editable installs fail; this file lets ``pip install -e .`` use the
legacy ``setup.py develop`` path. All metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
