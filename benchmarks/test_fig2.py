"""Benchmarks: regenerate Figure 2 (I/O-bound horizontal scaling)."""

from repro.bench import fig2

from benchmarks.conftest import run_experiment


def test_fig2a_pvc(benchmark):
    run_experiment(benchmark, fig2.pvc_report)


def test_fig2b_wc(benchmark):
    run_experiment(benchmark, fig2.wc_report)


def test_fig2c_ts(benchmark):
    run_experiment(benchmark, fig2.ts_report)
