"""Benchmark: regenerate Table I (feature matrix, with engine checks)."""

from repro.bench import table1

from benchmarks.conftest import run_experiment


def test_table1_feature_matrix(benchmark):
    run_experiment(benchmark, table1.report)
