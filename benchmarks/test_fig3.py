"""Benchmarks: regenerate Figure 3 (compute-bound apps, CPU/GPU/GPMR)."""

from repro.bench import fig3

from benchmarks.conftest import run_experiment


def test_fig3a_km_cpu(benchmark):
    run_experiment(benchmark, fig3.km_cpu_report)


def test_fig3b_mm_cpu(benchmark):
    run_experiment(benchmark, fig3.mm_cpu_report)


def test_fig3c_km_gpu(benchmark):
    run_experiment(benchmark, fig3.km_gpu_report)


def test_fig3d_mm_gpu(benchmark):
    run_experiment(benchmark, fig3.mm_gpu_report)


def test_fig3e_km_overlap(benchmark):
    run_experiment(benchmark, fig3.km_overlap_report)
