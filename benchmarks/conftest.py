"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures: it
runs the experiment exactly once under pytest-benchmark's timer (the
wall-clock number measures the harness itself — the *simulated* results
are attached as ``extra_info`` and printed), then asserts the
experiment's shape checks, so a calibration regression fails the bench.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from typing import Callable, List

from repro.bench.harness import ExperimentReport


def run_experiment(benchmark, fn: Callable[[], ExperimentReport],
                   ) -> ExperimentReport:
    """Execute one report-producing experiment under the benchmark timer."""
    report = benchmark.pedantic(fn, rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = report.experiment
    benchmark.extra_info["checks"] = [str(c) for c in report.checks]
    for table in report.tables:
        benchmark.extra_info.setdefault("tables", []).append(table.render())
    print()
    print(report.render())
    report.assert_shape()
    return report


def run_experiments(benchmark, fns: List[Callable[[], ExperimentReport]]):
    """Run several panels as one benchmark (e.g. a whole figure)."""
    def all_panels():
        return [fn() for fn in fns]

    reports = benchmark.pedantic(all_panels, rounds=1, iterations=1)
    for report in reports:
        print()
        print(report.render())
    for report in reports:
        report.assert_shape()
    return reports
