"""Benchmarks: regenerate Figure 4 (intermediate-data handling)."""

from repro.bench import fig4

from benchmarks.conftest import run_experiment


def test_fig4a_partitioner_threads(benchmark):
    run_experiment(benchmark, fig4.partitioning_report)


def test_fig4b_merge_delay(benchmark):
    run_experiment(benchmark, fig4.merge_delay_report)
