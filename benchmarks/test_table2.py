"""Benchmark: regenerate Table II (WC map-pipeline breakdown)."""

from repro.bench import table2

from benchmarks.conftest import run_experiment


def test_table2_wc_breakdown(benchmark):
    run_experiment(benchmark, table2.report)
