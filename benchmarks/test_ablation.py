"""Benchmarks: design-choice ablations (beyond the paper's figures)."""

from repro.bench import ablation

from benchmarks.conftest import run_experiment


def test_buffering_levels(benchmark):
    run_experiment(benchmark, ablation.buffering_report)


def test_collector_contention(benchmark):
    run_experiment(benchmark, ablation.collector_contention_report)


def test_affinity_scheduling(benchmark):
    run_experiment(benchmark, ablation.affinity_report)


def test_network_fabrics(benchmark):
    run_experiment(benchmark, ablation.network_report)


def test_per_phase_devices(benchmark):
    run_experiment(benchmark, ablation.phase_device_report)
