"""Benchmark: regenerate Figure 5 (reduce pipeline vs concurrent keys)."""

from repro.bench import fig5

from benchmarks.conftest import run_experiment


def test_fig5_reduce_concurrent_keys(benchmark):
    run_experiment(benchmark, fig5.report)
