"""Benchmark: regenerate the §IV-C vertical-scalability device sweep."""

from repro.bench import vertical

from benchmarks.conftest import run_experiment


def test_vertical_device_sweep(benchmark):
    run_experiment(benchmark, vertical.report)
