"""Benchmark: regenerate Table III (KM breakdown, CPU vs GTX480)."""

from repro.bench import table3

from benchmarks.conftest import run_experiment


def test_table3_km_breakdown(benchmark):
    run_experiment(benchmark, table3.report)
